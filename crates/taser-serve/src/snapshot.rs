//! Generation-swapped graph snapshots over a live event stream.
//!
//! The serving engine has one writer (the ingest path) and many readers
//! (scoring workers). Rebuilding the index in place would force readers to
//! lock it, so the writer instead *republishes*: it produces a fresh
//! immutable index off to the side and swaps an `Arc` pointer under a brief
//! write lock. Readers clone the `Arc` (two atomic ops) and then score
//! against an immutable snapshot for as long as they like — the classic
//! epoch/RCU pattern. Each published snapshot carries a monotonically
//! increasing `generation`, which scoring results echo back so callers can
//! tell which view of the graph produced a score.
//!
//! Two [`IndexBackend`]s produce the published index:
//!
//! * [`IndexBackend::Rebuild`] — `TCsr::build` over the full log on every
//!   publish (O(E), parallelized, the original path). Simple, optimal query
//!   layout, fine for small or slowly-growing graphs.
//! * [`IndexBackend::Incremental`] — a sharded
//!   [`IncIndexWriter`] that appends in O(1)
//!   and publishes in O(Δ): only nodes touched since the last generation
//!   are re-sealed, everything else is structurally shared. This keeps
//!   publish latency flat as the live graph grows — the backend large
//!   deployments should run.
//!
//! Both backends answer queries identically (differential-tested in
//! `tests/index_equivalence.rs`); the switch only trades publish cost
//! against per-query constant factors.
//!
//! # Durability
//!
//! A store built with [`SnapshotStore::durable`] makes the ingest path
//! crash-safe: every accepted event is framed into a CRC-checked
//! write-ahead log (`taser_graph::wal`) before `ingest` returns, and
//! every [`DurabilityConfig::checkpoint_every`] events the full stream is
//! checkpointed atomically and the WAL reset. Reopening the same
//! directory recovers checkpoint + WAL tail (deduplicated by event id)
//! into a store whose published index is bit-identical — by
//! `taser_graph::content_digest` — to the pre-crash one.

use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use taser_graph::events::{Event, EventLog};
use taser_graph::index::TemporalIndex;
use taser_graph::stream::StreamingGraph;
use taser_graph::wal::{self, Checkpoint, EventWal, WalFaults};
use taser_index::{IncIndexWriter, DEFAULT_SHARDS};

/// Which index implementation backs snapshot publishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndexBackend {
    /// Rebuild a flat `TCsr` from the full log on every publish (O(E)).
    #[default]
    Rebuild,
    /// Incrementally maintained sharded chunk index; publish cost scales
    /// with the delta since the last generation, not the history.
    Incremental,
}

impl IndexBackend {
    /// Name used in CLI flags and reports.
    pub fn name(&self) -> &'static str {
        match self {
            IndexBackend::Rebuild => "rebuild",
            IndexBackend::Incremental => "incremental",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "rebuild" => Some(IndexBackend::Rebuild),
            "incremental" => Some(IndexBackend::Incremental),
            _ => None,
        }
    }
}

/// One immutable published view of the streaming graph.
pub struct GraphSnapshot {
    /// The temporal adjacency index at publish time (shared with the
    /// backend — publishing never deep-copies clean state).
    pub csr: Arc<dyn TemporalIndex>,
    /// Publish sequence number (0 = the seed log).
    pub generation: u64,
    /// Events reflected in `csr`.
    pub num_events: usize,
    /// Timestamp of the latest indexed event (`f64::NEG_INFINITY` if none).
    pub latest_t: f64,
}

/// The mutable side of one backend.
enum IngestGraph {
    Rebuild(StreamingGraph),
    Incremental(IncIndexWriter),
}

impl IngestGraph {
    fn append(&mut self, src: u32, dst: u32, t: f64) -> Event {
        match self {
            IngestGraph::Rebuild(g) => g.append(src, dst, t),
            IngestGraph::Incremental(w) => w.append(src, dst, t),
        }
    }

    fn len(&self) -> usize {
        match self {
            IngestGraph::Rebuild(g) => g.len(),
            IngestGraph::Incremental(w) => w.len(),
        }
    }

    fn publish(&mut self) -> Arc<dyn TemporalIndex> {
        match self {
            IngestGraph::Rebuild(g) => g.csr_fresh_shared(),
            IngestGraph::Incremental(w) => w.publish(),
        }
    }
}

/// Durability knobs for [`SnapshotStore::durable`].
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the WAL (`events.wal`) and checkpoint
    /// (`graph.ckpt`); created if absent. Reopening the same directory
    /// recovers whatever a previous store persisted there.
    pub dir: PathBuf,
    /// Checkpoint the full stream (and reset the WAL) every this many
    /// WAL-framed ingests. `0` checkpoints only on
    /// [`SnapshotStore::checkpoint_now`], leaving the WAL to grow.
    pub checkpoint_every: u64,
    /// Write the WAL buffer to the OS every this many appends (`1` =
    /// every append). An fsync still requires [`SnapshotStore::wal_sync`].
    pub wal_flush_every: usize,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default cadences (checkpoint every
    /// 10 000 events, flush every 64 appends).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 10_000,
            wal_flush_every: 64,
        }
    }
}

/// What [`SnapshotStore::durable`] found on disk and what bringing it
/// back cost.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// True when the directory held prior state (checkpoint or WAL
    /// records); false on a cold start seeded from the passed log.
    pub recovered: bool,
    /// Events restored from the checkpoint.
    pub checkpoint_events: usize,
    /// WAL records replayed past the checkpoint.
    pub wal_replayed: usize,
    /// WAL records skipped as already covered by the checkpoint.
    pub wal_deduped: usize,
    /// True when a torn/corrupt WAL tail was truncated during recovery.
    pub wal_truncated: bool,
    /// Events in the store after recovery (or seeding).
    pub events_total: usize,
    /// Wall time from open to a queryable store.
    pub elapsed: Duration,
}

/// The WAL + checkpoint state of a durable store, living inside the
/// ingest mutex so framing is ordered exactly like the appends it logs.
struct DurableState {
    wal: EventWal,
    ckpt_path: PathBuf,
    /// Every event the store holds, in eid order — what the next
    /// checkpoint serializes.
    shadow: Vec<Event>,
    checkpoint_every: u64,
    since_checkpoint: u64,
    /// Node-id space high-water mark (checkpoints must preserve it even
    /// when the max node id shrinks out of the event set — it never does,
    /// but the invariant is cheap to keep explicit).
    num_nodes: usize,
    wal_appends: Arc<taser_obs::Counter>,
    wal_flushes: Arc<taser_obs::Counter>,
    checkpoints: Arc<taser_obs::Counter>,
}

impl DurableState {
    /// Write a checkpoint of everything ingested so far and reset the WAL.
    fn checkpoint(&mut self) -> io::Result<()> {
        let next_eid = self.shadow.last().map_or(0, |e| e.eid + 1);
        Checkpoint::save(&self.ckpt_path, &self.shadow, self.num_nodes, next_eid)?;
        self.wal.reset()?;
        self.since_checkpoint = 0;
        self.checkpoints.inc();
        Ok(())
    }
}

struct Ingest {
    graph: IngestGraph,
    last_t: f64,
    since_publish: usize,
    generation: u64,
    /// When the current generation was published (store construction counts
    /// as publishing generation 0). Backs the health watchdog's publish-lag
    /// signal.
    last_publish_at: Instant,
    /// `Some` on stores built with [`SnapshotStore::durable`].
    durable: Option<DurableState>,
    /// `Some` once [`SnapshotStore::attach_replication`] wired a hub in:
    /// every accepted ingest is offered to the hub *inside* the ingest
    /// lock, so replicas observe frames in strict eid order.
    repl: Option<Arc<crate::replication::ReplicationHub>>,
}

/// How stale the published snapshot is relative to the ingest stream.
#[derive(Clone, Copy, Debug)]
pub struct PublishLag {
    /// Events ingested since the last publish (what the next publish would
    /// index).
    pub pending_events: u64,
    /// Wall time since the last publish (or store construction).
    pub since_publish: Duration,
}

/// Single-writer / many-reader snapshot store over a live event stream.
pub struct SnapshotStore {
    ingest: Mutex<Ingest>,
    current: RwLock<Arc<GraphSnapshot>>,
    publish_every: usize,
    backend: IndexBackend,
}

impl SnapshotStore {
    /// Seeds the store from an existing log (generation 0 indexes it fully)
    /// with the default [`IndexBackend::Rebuild`]. `publish_every` bounds
    /// snapshot staleness: after that many appends the ingest path
    /// republishes automatically (`0` disables auto-publish).
    pub fn new(log: EventLog, num_nodes: usize, publish_every: usize) -> Self {
        Self::with_backend(log, num_nodes, publish_every, IndexBackend::default())
    }

    /// Like [`SnapshotStore::new`] with an explicit index backend.
    pub fn with_backend(
        log: EventLog,
        num_nodes: usize,
        publish_every: usize,
        backend: IndexBackend,
    ) -> Self {
        Self::build(log, num_nodes, publish_every, backend, None)
    }

    /// A **durable** store: WAL-framed ingest with periodic checkpoints
    /// under `durability.dir`, recovering any state already there.
    ///
    /// When the directory holds prior state (checkpoint and/or WAL
    /// records), the recovered events *are* the seed and `seed_log` is
    /// ignored; a cold start seeds from `seed_log` and persists it as the
    /// initial checkpoint, so from then on the directory alone fully
    /// describes the store. `faults` arms WAL-level fault injection
    /// (chaos tests); pass `WalFaults::default()` in production.
    pub fn durable(
        seed_log: EventLog,
        num_nodes: usize,
        publish_every: usize,
        backend: IndexBackend,
        durability: DurabilityConfig,
        faults: WalFaults,
    ) -> io::Result<(Self, RecoveryReport)> {
        let start = Instant::now();
        let flush_every = durability.wal_flush_every.max(1);
        let (load, wal) = wal::recover_with_faults(&durability.dir, flush_every, faults)?;
        let recovered = load.checkpoint_events > 0 || load.wal_replayed > 0 || load.wal_deduped > 0;
        let (events, num_nodes) = if recovered {
            (load.events, load.num_nodes.max(num_nodes))
        } else {
            (seed_log.events().to_vec(), num_nodes)
        };
        let registry = taser_obs::global();
        if load.wal_truncated {
            registry.counter("taser_wal_truncated_total").inc();
        }
        let mut durable = DurableState {
            wal,
            ckpt_path: durability.dir.join(wal::CKPT_FILE),
            shadow: events.clone(),
            checkpoint_every: durability.checkpoint_every,
            since_checkpoint: 0,
            num_nodes: num_nodes.max(
                events
                    .iter()
                    .map(|e| e.src.max(e.dst) as usize + 1)
                    .max()
                    .unwrap_or(0),
            ),
            wal_appends: registry.counter("taser_wal_appends_total"),
            wal_flushes: registry.counter("taser_wal_flushes_total"),
            checkpoints: registry.counter("taser_checkpoints_total"),
        };
        if !recovered && !durable.shadow.is_empty() {
            // persist the cold-start seed so a crash before the first
            // cadence checkpoint still recovers it
            durable.checkpoint()?;
        }
        let report = RecoveryReport {
            recovered,
            checkpoint_events: load.checkpoint_events,
            wal_replayed: load.wal_replayed,
            wal_deduped: load.wal_deduped,
            wal_truncated: load.wal_truncated,
            events_total: durable.shadow.len(),
            elapsed: start.elapsed(),
        };
        registry
            .gauge("taser_recovery_us")
            .set(report.elapsed.as_micros() as i64);
        let store = Self::build(
            EventLog::from_sorted(events),
            durable.num_nodes,
            publish_every,
            backend,
            Some(durable),
        );
        Ok((store, report))
    }

    fn build(
        log: EventLog,
        num_nodes: usize,
        publish_every: usize,
        backend: IndexBackend,
        durable: Option<DurableState>,
    ) -> Self {
        let last_t = log
            .events()
            .last()
            .map(|e| e.t)
            .unwrap_or(f64::NEG_INFINITY);
        let num_events = log.len();
        let mut graph = match backend {
            IndexBackend::Rebuild => IngestGraph::Rebuild(StreamingGraph::new(log, num_nodes)),
            IndexBackend::Incremental => {
                IngestGraph::Incremental(IncIndexWriter::from_log(&log, num_nodes, DEFAULT_SHARDS))
            }
        };
        let snapshot = GraphSnapshot {
            csr: graph.publish(),
            generation: 0,
            num_events,
            latest_t: last_t,
        };
        SnapshotStore {
            ingest: Mutex::new(Ingest {
                graph,
                last_t,
                since_publish: 0,
                generation: 0,
                last_publish_at: Instant::now(),
                durable,
                repl: None,
            }),
            current: RwLock::new(Arc::new(snapshot)),
            publish_every,
            backend,
        }
    }

    /// The backend this store publishes with.
    pub fn backend(&self) -> IndexBackend {
        self.backend
    }

    /// The latest published snapshot (cheap: clones an `Arc`).
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Generation of the latest published snapshot.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Appends one interaction. Unlike a raw backend `append` this is
    /// fallible — a server must survive a misbehaving client — and it
    /// triggers an automatic republish every `publish_every` appends.
    /// Returns the stored event (with its assigned edge id).
    pub fn ingest(&self, src: u32, dst: u32, t: f64) -> Result<Event, String> {
        if !t.is_finite() {
            return Err(format!("non-finite timestamp {t}"));
        }
        let mut ing = self.ingest.lock().expect("ingest lock poisoned");
        if t < ing.last_t {
            return Err(format!(
                "stream must be chronological: {t} < {}",
                ing.last_t
            ));
        }
        let e = ing.graph.append(src, dst, t);
        ing.last_t = t;
        ing.since_publish += 1;
        if let Some(d) = ing.durable.as_mut() {
            // WAL-frame before acknowledging. On an I/O error the caller
            // sees it and the in-memory graph is ahead of the log:
            // durability degraded, consistency intact.
            let flushed = d
                .wal
                .append(&e)
                .map_err(|err| format!("wal append: {err}"))?;
            d.wal_appends.inc();
            if flushed {
                d.wal_flushes.inc();
            }
            d.shadow.push(e);
            d.num_nodes = d.num_nodes.max(src.max(dst) as usize + 1);
            d.since_checkpoint += 1;
            if d.checkpoint_every > 0 && d.since_checkpoint >= d.checkpoint_every {
                d.checkpoint().map_err(|err| format!("checkpoint: {err}"))?;
            }
        }
        if let Some(hub) = ing.repl.as_ref() {
            // offered after WAL framing (the primary holds the event
            // durably before any replica sees it) and inside the ingest
            // lock (frames reach the hub in strict eid order)
            hub.append(e);
        }
        if self.publish_every > 0 && ing.since_publish >= self.publish_every {
            self.publish_locked(&mut ing);
        }
        Ok(e)
    }

    /// Flush + fsync the WAL, making every accepted ingest crash-durable
    /// right now regardless of the batched flush cadence. No-op `Ok` on a
    /// non-durable store.
    pub fn wal_sync(&self) -> io::Result<()> {
        let mut ing = self.ingest.lock().expect("ingest lock poisoned");
        match ing.durable.as_mut() {
            Some(d) => d.wal.sync(),
            None => Ok(()),
        }
    }

    /// Checkpoint the full stream now and reset the WAL, regardless of
    /// the checkpoint cadence. No-op `Ok` on a non-durable store.
    pub fn checkpoint_now(&self) -> io::Result<()> {
        let mut ing = self.ingest.lock().expect("ingest lock poisoned");
        match ing.durable.as_mut() {
            Some(d) => d.checkpoint(),
            None => Ok(()),
        }
    }

    /// Whether this store WAL-frames its ingest path.
    pub fn is_durable(&self) -> bool {
        self.ingest
            .lock()
            .expect("ingest lock poisoned")
            .durable
            .is_some()
    }

    /// Forces a republish of everything ingested so far; returns the new
    /// snapshot's generation (unchanged if nothing new arrived).
    pub fn publish(&self) -> u64 {
        let mut ing = self.ingest.lock().expect("ingest lock poisoned");
        if ing.since_publish == 0 {
            return ing.generation;
        }
        self.publish_locked(&mut ing);
        ing.generation
    }

    fn publish_locked(&self, ing: &mut Ingest) {
        ing.generation += 1;
        let snapshot = GraphSnapshot {
            csr: ing.graph.publish(),
            generation: ing.generation,
            num_events: ing.graph.len(),
            latest_t: ing.last_t,
        };
        ing.since_publish = 0;
        ing.last_publish_at = Instant::now();
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
    }

    /// Total events ingested (published or not).
    pub fn num_events(&self) -> usize {
        self.ingest
            .lock()
            .expect("ingest lock poisoned")
            .graph
            .len()
    }

    /// Staleness of the published snapshot: events awaiting the next
    /// publish and wall time since the last one. Read under the ingest
    /// lock, allocation-free — the health watchdog polls this on a fixed
    /// period to detect a wedged or starved publish path.
    pub fn publish_lag(&self) -> PublishLag {
        let ing = self.ingest.lock().expect("ingest lock poisoned");
        PublishLag {
            pending_events: ing.since_publish as u64,
            since_publish: ing.last_publish_at.elapsed(),
        }
    }

    /// Wires a replication hub into the ingest path: the hub is seeded
    /// with every event the store already holds (under the ingest lock, so
    /// no concurrent ingest can slip between seed and hookup) and from
    /// then on every accepted ingest is offered to it in eid order.
    ///
    /// Requires an event history to seed from: a durable store (the
    /// checkpoint shadow) or the [`IndexBackend::Rebuild`] backend (the
    /// streaming log). A non-durable incremental store keeps no replayable
    /// history and is rejected — replication without a seed could never
    /// bootstrap a joining replica.
    pub fn attach_replication(
        &self,
        hub: &Arc<crate::replication::ReplicationHub>,
    ) -> Result<(), String> {
        let mut ing = self.ingest.lock().expect("ingest lock poisoned");
        if ing.repl.is_some() {
            return Err("replication hub already attached".to_string());
        }
        let (events, num_nodes) = match (&ing.durable, &ing.graph) {
            (Some(d), _) => (d.shadow.clone(), d.num_nodes),
            (None, IngestGraph::Rebuild(g)) => (g.snapshot().events().to_vec(), g.num_nodes()),
            (None, IngestGraph::Incremental(_)) => {
                return Err(
                    "replication requires a durable store (or the rebuild backend)".to_string(),
                )
            }
        };
        hub.seed(events, num_nodes);
        ing.repl = Some(hub.clone());
        Ok(())
    }

    /// Events appended to the WAL over this store's lifetime (0 on a
    /// non-durable store). The replication reconciliation tests check
    /// replica-applied counts against exactly this.
    pub fn wal_appended(&self) -> u64 {
        let ing = self.ingest.lock().expect("ingest lock poisoned");
        ing.durable.as_ref().map_or(0, |d| d.wal.appended())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use taser_graph::content_digest;

    const BOTH: [IndexBackend; 2] = [IndexBackend::Rebuild, IndexBackend::Incremental];

    /// Fresh per-test scratch directory inside the workspace target dir
    /// (the repo sandbox has no writable system tmp).
    fn durable_dir(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        p.push("../../target/wal-tests");
        p.push(format!("serve-snap-{name}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn dcfg(dir: &std::path::Path, checkpoint_every: u64) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.to_path_buf(),
            checkpoint_every,
            wal_flush_every: 1,
        }
    }

    #[test]
    fn seed_log_is_generation_zero() {
        for backend in BOTH {
            let log = EventLog::from_unsorted(vec![(0, 1, 1.0), (1, 2, 2.0)]);
            let store = SnapshotStore::with_backend(log, 3, 0, backend);
            let snap = store.snapshot();
            assert_eq!(snap.generation, 0, "{}", backend.name());
            assert_eq!(snap.num_events, 2);
            assert_eq!(snap.csr.temporal_degree(1, 10.0), 2);
            assert_eq!(store.backend(), backend);
        }
    }

    #[test]
    fn ingest_is_invisible_until_publish() {
        for backend in BOTH {
            let store = SnapshotStore::with_backend(EventLog::default(), 2, 0, backend);
            store.ingest(0, 1, 1.0).unwrap();
            assert_eq!(store.snapshot().num_events, 0, "not yet published");
            let generation = store.publish();
            assert_eq!(generation, 1);
            let snap = store.snapshot();
            assert_eq!(snap.num_events, 1);
            assert_eq!(snap.csr.temporal_degree(0, 2.0), 1);
            // publishing with nothing new keeps the generation
            assert_eq!(store.publish(), 1);
        }
    }

    #[test]
    fn auto_publish_after_threshold() {
        for backend in BOTH {
            let store = SnapshotStore::with_backend(EventLog::default(), 4, 3, backend);
            store.ingest(0, 1, 1.0).unwrap();
            store.ingest(1, 2, 2.0).unwrap();
            assert_eq!(store.snapshot().generation, 0);
            store.ingest(2, 3, 3.0).unwrap();
            let snap = store.snapshot();
            assert_eq!(snap.generation, 1, "third append must republish");
            assert_eq!(snap.num_events, 3);
        }
    }

    #[test]
    fn rejects_time_regression_without_poisoning() {
        for backend in BOTH {
            let store = SnapshotStore::with_backend(EventLog::default(), 2, 0, backend);
            store.ingest(0, 1, 5.0).unwrap();
            assert!(store.ingest(0, 1, 4.0).is_err());
            assert!(store.ingest(0, 1, f64::NAN).is_err());
            // the store still works after rejected appends
            store.ingest(0, 1, 6.0).unwrap();
            assert_eq!(store.num_events(), 2);
        }
    }

    #[test]
    fn readers_hold_old_snapshots_across_publishes() {
        for backend in BOTH {
            let store = SnapshotStore::with_backend(EventLog::default(), 8, 0, backend);
            store.ingest(0, 1, 1.0).unwrap();
            store.publish();
            let old = store.snapshot();
            for i in 0..10 {
                store.ingest(0, 1, 2.0 + i as f64).unwrap();
            }
            store.publish();
            // the old snapshot is unaffected by later publishes
            assert_eq!(old.num_events, 1);
            assert_eq!(old.csr.temporal_degree(0, 100.0), 1);
            assert_eq!(store.snapshot().num_events, 11);
        }
    }

    #[test]
    fn backends_publish_identical_indexes() {
        // same stream through both backends → every query agrees
        let seed =
            EventLog::from_unsorted((0..40u32).map(|i| (i % 7, 7 + i % 5, i as f64)).collect());
        let a = SnapshotStore::with_backend(seed.clone(), 12, 0, IndexBackend::Rebuild);
        let b = SnapshotStore::with_backend(seed, 12, 0, IndexBackend::Incremental);
        for i in 0..120u32 {
            let (src, dst, t) = (i % 12, (i * 5 + 1) % 12, 40.0 + i as f64);
            a.ingest(src, dst, t).unwrap();
            b.ingest(src, dst, t).unwrap();
            if i % 30 == 0 {
                a.publish();
                b.publish();
            }
        }
        a.publish();
        b.publish();
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa.num_events, sb.num_events);
        assert_eq!(sa.csr.num_entries(), sb.csr.num_entries());
        for v in 0..12u32 {
            assert_eq!(sa.csr.neighbor_count(v), sb.csr.neighbor_count(v));
            for t in [0.0, 20.0, 40.5, 99.9, 1e9] {
                assert_eq!(sa.csr.pivot(v, t), sb.csr.pivot(v, t), "v={v} t={t}");
            }
            for i in 0..sa.csr.neighbor_count(v) {
                assert_eq!(sa.csr.entry(v, i), sb.csr.entry(v, i), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn publish_lag_counts_pending_and_resets_on_publish() {
        let store = SnapshotStore::new(EventLog::default(), 2, 0);
        assert_eq!(store.publish_lag().pending_events, 0);
        store.ingest(0, 1, 1.0).unwrap();
        store.ingest(0, 1, 2.0).unwrap();
        assert_eq!(store.publish_lag().pending_events, 2);
        store.publish();
        let lag = store.publish_lag();
        assert_eq!(lag.pending_events, 0);
        assert!(lag.since_publish < Duration::from_secs(60));
    }

    #[test]
    fn concurrent_readers_and_one_writer() {
        for backend in BOTH {
            let store = Arc::new(SnapshotStore::with_backend(
                EventLog::default(),
                64,
                16,
                backend,
            ));
            let stop = Arc::new(AtomicBool::new(false));
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let store = store.clone();
                    let stop = stop.clone();
                    s.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            let snap = store.snapshot();
                            // the snapshot must always be internally consistent
                            assert!(snap.csr.num_entries() <= 2 * snap.num_events);
                        }
                    });
                }
                for i in 0..500u32 {
                    store.ingest(i % 8, 8 + i % 8, i as f64).unwrap();
                }
                stop.store(true, Ordering::Relaxed);
            });
            store.publish();
            assert_eq!(store.snapshot().num_events, 500, "{}", backend.name());
        }
    }

    #[test]
    fn durable_store_recovers_bit_identically_across_backends() {
        let dir = durable_dir("roundtrip");
        let seed = EventLog::from_unsorted(vec![(0, 1, 1.0), (1, 2, 2.0)]);
        let (store, report) = SnapshotStore::durable(
            seed,
            3,
            0,
            IndexBackend::Rebuild,
            dcfg(&dir, 0),
            WalFaults::default(),
        )
        .unwrap();
        assert!(!report.recovered, "cold start");
        assert_eq!(report.events_total, 2);
        assert!(store.is_durable());
        for i in 0..5u32 {
            store.ingest(i % 3, (i + 1) % 3, 3.0 + i as f64).unwrap();
        }
        store.publish();
        let digest = content_digest(store.snapshot().csr.as_ref());
        store.wal_sync().unwrap();
        drop(store);

        // reopen with an *empty* seed and the other backend: the directory
        // alone must reproduce the same logical index
        let (re, report) = SnapshotStore::durable(
            EventLog::default(),
            1,
            0,
            IndexBackend::Incremental,
            dcfg(&dir, 0),
            WalFaults::default(),
        )
        .unwrap();
        assert!(report.recovered);
        assert_eq!(report.checkpoint_events, 2, "seed was checkpointed");
        assert_eq!(report.wal_replayed, 5);
        assert_eq!(report.events_total, 7);
        assert_eq!(re.num_events(), 7);
        assert_eq!(content_digest(re.snapshot().csr.as_ref()), digest);
        // the stream picks up where it left off (eids + chronology intact)
        let e = re.ingest(0, 2, 100.0).unwrap();
        assert_eq!(e.eid, 7);
    }

    #[test]
    fn checkpoint_cadence_truncates_the_wal() {
        let dir = durable_dir("cadence");
        let (store, _) = SnapshotStore::durable(
            EventLog::default(),
            4,
            0,
            IndexBackend::Rebuild,
            dcfg(&dir, 3),
            WalFaults::default(),
        )
        .unwrap();
        for i in 0..7u32 {
            store.ingest(i % 4, (i + 1) % 4, i as f64).unwrap();
        }
        drop(store);
        let (_, report) = SnapshotStore::durable(
            EventLog::default(),
            4,
            0,
            IndexBackend::Rebuild,
            dcfg(&dir, 3),
            WalFaults::default(),
        )
        .unwrap();
        // checkpoints fired at events 3 and 6; only the seventh event was
        // still in the WAL
        assert_eq!(report.checkpoint_events, 6);
        assert_eq!(report.wal_replayed, 1);
        assert_eq!(report.wal_deduped, 0);
        assert_eq!(report.events_total, 7);
    }

    #[test]
    fn checkpoint_now_and_wal_sync_are_noops_without_durability() {
        let store = SnapshotStore::new(EventLog::default(), 2, 0);
        assert!(!store.is_durable());
        store.wal_sync().unwrap();
        store.checkpoint_now().unwrap();
    }
}
