//! Generation-swapped graph snapshots over a live event stream.
//!
//! The serving engine has one writer (the ingest path) and many readers
//! (scoring workers). Rebuilding the T-CSR in place would force readers to
//! lock the whole index, so the writer instead *republishes*: it rebuilds a
//! fresh [`TCsr`] off to the side and swaps an `Arc` pointer under a brief
//! write lock. Readers clone the `Arc` (two atomic ops) and then score
//! against an immutable snapshot for as long as they like — the classic
//! epoch/RCU pattern. Each published snapshot carries a monotonically
//! increasing `generation`, which scoring results echo back so callers can
//! tell which view of the graph produced a score.

use std::sync::{Arc, Mutex, RwLock};
use taser_graph::events::{Event, EventLog};
use taser_graph::stream::StreamingGraph;
use taser_graph::tcsr::TCsr;

/// One immutable published view of the streaming graph.
pub struct GraphSnapshot {
    /// The temporal adjacency index at publish time (shared with the
    /// streaming graph — publishing never deep-copies the index).
    pub csr: Arc<TCsr>,
    /// Publish sequence number (0 = the seed log).
    pub generation: u64,
    /// Events reflected in `csr`.
    pub num_events: usize,
    /// Timestamp of the latest indexed event (`f64::NEG_INFINITY` if none).
    pub latest_t: f64,
}

struct Ingest {
    graph: StreamingGraph,
    last_t: f64,
    since_publish: usize,
    generation: u64,
}

/// Single-writer / many-reader snapshot store over a [`StreamingGraph`].
pub struct SnapshotStore {
    ingest: Mutex<Ingest>,
    current: RwLock<Arc<GraphSnapshot>>,
    publish_every: usize,
}

impl SnapshotStore {
    /// Seeds the store from an existing log (generation 0 indexes it fully).
    /// `publish_every` bounds snapshot staleness: after that many appends the
    /// ingest path republishes automatically (`0` disables auto-publish).
    pub fn new(log: EventLog, num_nodes: usize, publish_every: usize) -> Self {
        let last_t = log
            .events()
            .last()
            .map(|e| e.t)
            .unwrap_or(f64::NEG_INFINITY);
        let num_events = log.len();
        let mut graph = StreamingGraph::new(log, num_nodes);
        let snapshot = GraphSnapshot {
            csr: graph.csr_fresh_shared(),
            generation: 0,
            num_events,
            latest_t: last_t,
        };
        SnapshotStore {
            ingest: Mutex::new(Ingest {
                graph,
                last_t,
                since_publish: 0,
                generation: 0,
            }),
            current: RwLock::new(Arc::new(snapshot)),
            publish_every,
        }
    }

    /// The latest published snapshot (cheap: clones an `Arc`).
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Generation of the latest published snapshot.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Appends one interaction. Unlike [`StreamingGraph::append`] this is
    /// fallible — a server must survive a misbehaving client — and it
    /// triggers an automatic republish every `publish_every` appends.
    /// Returns the stored event (with its assigned edge id).
    pub fn ingest(&self, src: u32, dst: u32, t: f64) -> Result<Event, String> {
        if !t.is_finite() {
            return Err(format!("non-finite timestamp {t}"));
        }
        let mut ing = self.ingest.lock().expect("ingest lock poisoned");
        if t < ing.last_t {
            return Err(format!(
                "stream must be chronological: {t} < {}",
                ing.last_t
            ));
        }
        let e = ing.graph.append(src, dst, t);
        ing.last_t = t;
        ing.since_publish += 1;
        if self.publish_every > 0 && ing.since_publish >= self.publish_every {
            self.publish_locked(&mut ing);
        }
        Ok(e)
    }

    /// Forces a republish of everything ingested so far; returns the new
    /// snapshot's generation (unchanged if nothing new arrived).
    pub fn publish(&self) -> u64 {
        let mut ing = self.ingest.lock().expect("ingest lock poisoned");
        if ing.since_publish == 0 {
            return ing.generation;
        }
        self.publish_locked(&mut ing);
        ing.generation
    }

    fn publish_locked(&self, ing: &mut Ingest) {
        ing.generation += 1;
        let snapshot = GraphSnapshot {
            csr: ing.graph.csr_fresh_shared(),
            generation: ing.generation,
            num_events: ing.graph.len(),
            latest_t: ing.last_t,
        };
        ing.since_publish = 0;
        *self.current.write().expect("snapshot lock poisoned") = Arc::new(snapshot);
    }

    /// Total events ingested (published or not).
    pub fn num_events(&self) -> usize {
        self.ingest
            .lock()
            .expect("ingest lock poisoned")
            .graph
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn seed_log_is_generation_zero() {
        let log = EventLog::from_unsorted(vec![(0, 1, 1.0), (1, 2, 2.0)]);
        let store = SnapshotStore::new(log, 3, 0);
        let snap = store.snapshot();
        assert_eq!(snap.generation, 0);
        assert_eq!(snap.num_events, 2);
        assert_eq!(snap.csr.temporal_degree(1, 10.0), 2);
    }

    #[test]
    fn ingest_is_invisible_until_publish() {
        let store = SnapshotStore::new(EventLog::default(), 2, 0);
        store.ingest(0, 1, 1.0).unwrap();
        assert_eq!(store.snapshot().num_events, 0, "not yet published");
        let generation = store.publish();
        assert_eq!(generation, 1);
        let snap = store.snapshot();
        assert_eq!(snap.num_events, 1);
        assert_eq!(snap.csr.temporal_degree(0, 2.0), 1);
        // publishing with nothing new keeps the generation
        assert_eq!(store.publish(), 1);
    }

    #[test]
    fn auto_publish_after_threshold() {
        let store = SnapshotStore::new(EventLog::default(), 4, 3);
        store.ingest(0, 1, 1.0).unwrap();
        store.ingest(1, 2, 2.0).unwrap();
        assert_eq!(store.snapshot().generation, 0);
        store.ingest(2, 3, 3.0).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.generation, 1, "third append must republish");
        assert_eq!(snap.num_events, 3);
    }

    #[test]
    fn rejects_time_regression_without_poisoning() {
        let store = SnapshotStore::new(EventLog::default(), 2, 0);
        store.ingest(0, 1, 5.0).unwrap();
        assert!(store.ingest(0, 1, 4.0).is_err());
        assert!(store.ingest(0, 1, f64::NAN).is_err());
        // the store still works after rejected appends
        store.ingest(0, 1, 6.0).unwrap();
        assert_eq!(store.num_events(), 2);
    }

    #[test]
    fn readers_hold_old_snapshots_across_publishes() {
        let store = SnapshotStore::new(EventLog::default(), 8, 0);
        store.ingest(0, 1, 1.0).unwrap();
        store.publish();
        let old = store.snapshot();
        for i in 0..10 {
            store.ingest(0, 1, 2.0 + i as f64).unwrap();
        }
        store.publish();
        // the old snapshot is unaffected by later publishes
        assert_eq!(old.num_events, 1);
        assert_eq!(old.csr.temporal_degree(0, 100.0), 1);
        assert_eq!(store.snapshot().num_events, 11);
    }

    #[test]
    fn concurrent_readers_and_one_writer() {
        let store = Arc::new(SnapshotStore::new(EventLog::default(), 64, 16));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let store = store.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = store.snapshot();
                        // the snapshot must always be internally consistent
                        assert!(snap.csr.num_entries() <= 2 * snap.num_events);
                    }
                });
            }
            for i in 0..500u32 {
                store.ingest(i % 8, 8 + i % 8, i as f64).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        store.publish();
        assert_eq!(store.snapshot().num_events, 500);
    }
}
