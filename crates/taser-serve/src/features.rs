//! The serving-side feature tier: Algorithm 3's top-k cache repurposed as an
//! inference feature cache.
//!
//! Training drives [`DynamicCache`] maintenance at epoch boundaries; a
//! server has no epochs, so maintenance is driven by *request count*
//! instead — every `epoch_requests` scored queries the cache runs its
//! overlap check and (when the hot set drifted) swaps in the current top-k.
//! Edge ids outside the trained feature table (events streamed in after
//! training) are served as zero vectors, bypassing the cache: they have no
//! stored features to cache.
//!
//! Methods take `&self`: the policy state (frequencies, cached set,
//! counters) sits behind an internal mutex so many scoring workers share
//! one cache, while the feature rows themselves are immutable and copied
//! lock-free — workers only serialize on the bookkeeping, not the gather.

use std::sync::Mutex;
use taser_cache::{DynamicCache, EpochCacheReport};
use taser_graph::feats::FeatureMatrix;
use taser_sample::PAD;

/// Aggregate cache-tier counters for [`crate::stats::ServeStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FeatureCacheStats {
    /// Feature rows served from the cached (fast) tier.
    pub hits: u64,
    /// Feature rows served from the backing (slow) tier.
    pub misses: u64,
    /// Rows outside the trained table, served as zeros.
    pub unknown: u64,
    /// Maintenance passes run.
    pub epochs: u64,
    /// Cache content replacements across those passes.
    pub replacements: u64,
    /// Hit rate over everything served so far.
    pub hit_rate: f64,
}

struct PolicyState {
    cache: Option<DynamicCache>,
    since_epoch: u64,
    stats: FeatureCacheStats,
    last_report: Option<EpochCacheReport>,
}

/// Edge-feature gather path with request-count-driven cache maintenance.
pub struct ServeFeatureCache {
    feats: Option<FeatureMatrix>,
    dim: usize,
    epoch_requests: u64,
    policy: Mutex<PolicyState>,
}

impl ServeFeatureCache {
    /// Wraps the trained edge-feature table (if any). `cache_ratio` is the
    /// cached fraction of rows (`<= 0` disables the cache tier), `epsilon`
    /// the replacement threshold, `epoch_requests` the maintenance period in
    /// scored queries (`0` disables maintenance).
    pub fn new(
        feats: Option<FeatureMatrix>,
        cache_ratio: f64,
        epsilon: f64,
        epoch_requests: u64,
        seed: u64,
    ) -> Self {
        let dim = feats.as_ref().map_or(0, |f| f.dim());
        let cache = feats.as_ref().and_then(|f| {
            (cache_ratio > 0.0).then(|| {
                let capacity = ((f.rows() as f64) * cache_ratio).round() as usize;
                DynamicCache::new(f.rows(), capacity, epsilon, seed)
            })
        });
        ServeFeatureCache {
            feats,
            dim,
            epoch_requests,
            policy: Mutex::new(PolicyState {
                cache,
                since_epoch: 0,
                stats: FeatureCacheStats::default(),
                last_report: None,
            }),
        }
    }

    /// Feature dimensionality (0 = the model has no edge features).
    pub fn dim(&self) -> usize {
        self.dim
    }

    fn policy(&self) -> std::sync::MutexGuard<'_, PolicyState> {
        // Counter state survives a panicking worker intact (plain integers
        // and a swap-based cache), so recover rather than cascade poison.
        self.policy.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Gathers features for possibly-padded edge ids into a zero-filled flat
    /// buffer `[eids.len() * dim]`. PAD slots and ids beyond the trained
    /// table stay zero. Allocates per call — hot paths should prefer
    /// [`ServeFeatureCache::gather_into`] with a reused buffer.
    pub fn gather(&self, eids: &[u32]) -> Vec<f32> {
        let mut buf = Vec::new();
        self.gather_into(eids, &mut buf);
        buf
    }

    /// [`ServeFeatureCache::gather`] into a caller-provided buffer, which is
    /// cleared and zero-filled to `eids.len() * dim` reusing its capacity —
    /// after warmup the gather performs no allocations (the cache-policy
    /// bookkeeping under the lock is allocation-free counters).
    pub fn gather_into(&self, eids: &[u32], buf: &mut Vec<f32>) {
        let de = self.dim;
        buf.clear();
        buf.resize(eids.len() * de, 0.0);
        let Some(feats) = &self.feats else {
            return;
        };
        let rows = feats.rows() as u32;
        {
            // bookkeeping under the lock; the row copies below are lock-free
            let mut p = self.policy();
            for &e in eids {
                if e == PAD {
                    continue;
                }
                if e >= rows {
                    p.stats.unknown += 1;
                    continue;
                }
                match &mut p.cache {
                    Some(c) => {
                        if c.access(e) {
                            p.stats.hits += 1;
                        } else {
                            p.stats.misses += 1;
                        }
                    }
                    None => p.stats.misses += 1,
                }
            }
        }
        for (i, &e) in eids.iter().enumerate() {
            if e != PAD && e < rows {
                buf[i * de..(i + 1) * de].copy_from_slice(feats.row(e as usize));
            }
        }
    }

    /// Accounts `n` scored queries toward the maintenance period, running
    /// the top-k overlap check when it elapses. Returns the report when a
    /// maintenance pass ran.
    pub fn on_requests(&self, n: u64) -> Option<EpochCacheReport> {
        if self.epoch_requests == 0 {
            return None;
        }
        let mut p = self.policy();
        p.cache.as_ref()?;
        p.since_epoch += n;
        if p.since_epoch < self.epoch_requests {
            return None;
        }
        p.since_epoch = 0;
        let report = p.cache.as_mut().expect("cache present").end_epoch();
        p.stats.epochs += 1;
        if report.replaced {
            p.stats.replacements += 1;
        }
        p.last_report = Some(report);
        Some(report)
    }

    /// The most recent maintenance report.
    pub fn last_report(&self) -> Option<EpochCacheReport> {
        self.policy().last_report
    }

    /// Counters so far.
    pub fn stats(&self) -> FeatureCacheStats {
        let mut s = self.policy().stats;
        let total = s.hits + s.misses;
        s.hit_rate = if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        };
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(rows: usize, dim: usize) -> FeatureMatrix {
        FeatureMatrix::from_vec((0..rows * dim).map(|x| x as f32).collect(), dim)
    }

    #[test]
    fn gather_zero_fills_pad_and_unknown() {
        let c = ServeFeatureCache::new(Some(feats(4, 2)), 0.5, 0.7, 0, 1);
        let buf = c.gather(&[1, PAD, 9]);
        assert_eq!(&buf[0..2], &[2.0, 3.0]);
        assert_eq!(&buf[2..6], &[0.0; 4], "PAD and unknown rows stay zero");
        let s = c.stats();
        assert_eq!(s.unknown, 1);
        assert_eq!(s.hits + s.misses, 1);
    }

    #[test]
    fn gather_into_reuses_capacity_and_matches_gather() {
        let c = ServeFeatureCache::new(Some(feats(6, 3)), 0.5, 0.7, 0, 1);
        let mut buf = Vec::new();
        c.gather_into(&[5, PAD, 0], &mut buf);
        assert_eq!(buf, c.gather(&[5, PAD, 0]));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        c.gather_into(&[1, 2], &mut buf);
        assert_eq!(buf.len(), 6);
        assert_eq!(buf.capacity(), cap, "shrinking gather must reuse capacity");
        assert_eq!(buf.as_ptr(), ptr, "no reallocation on reuse");
    }

    #[test]
    fn featureless_model_gathers_empty() {
        let c = ServeFeatureCache::new(None, 0.5, 0.7, 8, 1);
        assert_eq!(c.dim(), 0);
        assert!(c.gather(&[1, 2]).is_empty());
        assert!(c.on_requests(100).is_none());
    }

    #[test]
    fn request_count_drives_maintenance() {
        let c = ServeFeatureCache::new(Some(feats(100, 2)), 0.1, 0.7, 10, 2);
        // a hot set the random initial content is unlikely to fully cover
        for _ in 0..20 {
            c.gather(&(40..50u32).collect::<Vec<_>>());
        }
        assert!(c.on_requests(9).is_none(), "period not yet elapsed");
        let report = c.on_requests(1).expect("period elapsed");
        assert!(report.accesses > 0);
        assert_eq!(c.stats().epochs, 1);
        // after adoption the hot set hits
        if report.replaced {
            let before = c.stats().hits;
            c.gather(&(40..50u32).collect::<Vec<_>>());
            assert_eq!(c.stats().hits - before, 10);
        }
    }

    #[test]
    fn oversized_request_burst_still_triggers_once() {
        let c = ServeFeatureCache::new(Some(feats(50, 1)), 0.2, 0.7, 10, 3);
        c.gather(&[1, 2, 3]);
        assert!(c.on_requests(1000).is_some());
        assert_eq!(c.stats().epochs, 1);
    }

    #[test]
    fn shared_across_threads() {
        let c = ServeFeatureCache::new(Some(feats(64, 2)), 0.25, 0.7, 0, 1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let buf = c.gather(&[1, 2, 3, 4]);
                        assert_eq!(buf.len(), 8);
                    }
                });
            }
        });
        let st = c.stats();
        assert_eq!(st.hits + st.misses, 4 * 50 * 4);
    }
}
