//! Line-oriented text protocol over stdin/stdout or TCP.
//!
//! One command per line, one reply per line (always flushed, so scripted
//! sessions and `nc` both work):
//!
//! ```text
//! ingest <u> <v> <t>       ->  ingested eid=<eid>
//! query <u> <v> <t> [lane] ->  score <prob> gen=<generation>
//!                          ->  overloaded queue_full lane=<l>   (shed at the door)
//!                          ->  overloaded deadline lane=<l>     (expired in queue)
//!                          ->  overloaded worker_failed lane=<l> (worker crashed or wedged)
//! publish                  ->  published gen=<generation>
//! stats                    ->  <one-line JSON>
//! metrics                  ->  <Prometheus text, multi-line>
//! health                   ->  <one-line JSON: level, rates, firing alerts>
//! watch <n>                ->  <n windowed-rate lines, one per eval period>
//! profile                  ->  <stage-occupancy folded stacks, multi-line>
//! trace                    ->  <chrome://tracing JSON, one line>
//! repl                     ->  <one-line JSON: role, position, lag, peers>
//! digest                   ->  digest <hex> gen=<generation>
//! promote                  ->  promoted next_eid=<n>   (replica -> primary)
//! shutdown                 ->  shutdown drained       (closes the session)
//! quit                     ->  bye            (closes the session)
//! # comment / blank        ->  (no reply)
//! ```
//!
//! Most replies are a single line; `metrics` (the Prometheus scrape),
//! `watch` (one line per evaluation period, paced by the watchdog's
//! cadence), and `profile` (folded stacks) are multi-line. Scripted
//! clients that count lines should issue those last or parse by their
//! framing (`# TYPE` for metrics, `t=` for watch).
//!
//! `health`, `watch`, and `profile` read the engine's health watchdog
//! ([`crate::health`]); with the watchdog disabled they answer from a
//! monitor nothing feeds (`health` then says `"watchdog":"off"`). `trace`
//! dumps the span rings on demand — the complement to the CLI's
//! `--trace-out`, which only writes its file at session end.
//!
//! `lane` is an optional priority lane index (0 = highest, drains first;
//! defaults to 0, clamped to the engine's `--lanes`). Under overload the
//! engine answers with a typed `overloaded` line instead of queueing the
//! query without bound — open-loop clients get explicit backpressure.
//!
//! Malformed input answers `error <reason>` and keeps the session open — a
//! server must survive misbehaving clients. That includes bytes that are
//! not UTF-8 (answered `error`, session continues) and clients that
//! disconnect mid-write (the session ends cleanly; the TCP accept loop
//! and every other connection are untouched). Query replies are bounded:
//! the session waits a multiple of the SLO for a ticket and then answers
//! `overloaded worker_failed` — a crashed or wedged scoring worker can
//! never hang a client on a dead ticket.
//!
//! The replication verbs are the failover runbook: `repl` reports the
//! node's role and feed position, `digest` publishes and answers the
//! content digest (the bit-identity oracle two nodes are compared by),
//! `promote` turns a caught-up replica into a writable primary, and
//! `shutdown` runs the engine's graceful drain (seal, flush the WAL
//! tail, final checkpoint) before closing the session. Clients dialing a
//! node that is still starting (or failing over) should connect through
//! [`client::connect_with_retry`].

use crate::engine::ServeEngine;
use std::io::{BufRead, ErrorKind, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// A parsed protocol command.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Command {
    /// Append a streaming interaction.
    Ingest {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Timestamp.
        t: f64,
    },
    /// Score a link query.
    Query {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Query time.
        t: f64,
        /// Priority lane (0 = highest; clamped to the engine's lane count).
        lane: usize,
    },
    /// Force a snapshot publish.
    Publish,
    /// Report engine counters.
    Stats,
    /// Render the full metric surface — engine stats, pool scheduling
    /// counters, and the process-wide [`taser_obs`] registry — as
    /// Prometheus text (multi-line).
    Metrics,
    /// One-line JSON health summary: overall level, windowed rates,
    /// per-lane burn state, and the currently-firing alerts.
    Health,
    /// `n` windowed-rate lines, one per watchdog evaluation period.
    Watch(usize),
    /// Stage-occupancy profile as folded stacks (multi-line).
    Profile,
    /// Dump recorded spans as chrome://tracing JSON (one line; empty
    /// trace unless tracing is on via `--trace-out` or `TASER_TRACE=1`).
    Trace,
    /// One-line JSON replication status: role, feed position, lag,
    /// connected peers.
    Repl,
    /// Publish, then answer the snapshot content digest — the identity
    /// two nodes are compared by after failover.
    Digest,
    /// Promote a read-only replica into a writable primary.
    Promote,
    /// Gracefully drain the engine (seal, flush, final checkpoint) and
    /// end the session.
    Shutdown,
    /// End the session.
    Quit,
}

/// Upper bound on `watch <n>`: a session verb must not pin the connection
/// for longer than ~10 minutes of default evaluation periods.
const WATCH_MAX: usize = 1200;

/// Parses one line; `Ok(None)` for blanks and `#` comments.
pub fn parse(line: &str) -> Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let verb = parts.next().expect("nonempty line has a token");
    let mut triple = |verb: &str| -> Result<(u32, u32, f64), String> {
        fn take<'a>(p: Option<&'a str>, verb: &str, what: &str) -> Result<&'a str, String> {
            p.ok_or_else(|| format!("{verb}: missing {what}"))
        }
        let src = take(parts.next(), verb, "src")?
            .parse::<u32>()
            .map_err(|e| format!("{verb}: bad src: {e}"))?;
        let dst = take(parts.next(), verb, "dst")?
            .parse::<u32>()
            .map_err(|e| format!("{verb}: bad dst: {e}"))?;
        let t = take(parts.next(), verb, "t")?
            .parse::<f64>()
            .map_err(|e| format!("{verb}: bad t: {e}"))?;
        Ok((src, dst, t))
    };
    match verb {
        "ingest" => {
            let (src, dst, t) = triple("ingest")?;
            if parts.next().is_some() {
                return Err("ingest: trailing tokens".to_string());
            }
            Ok(Some(Command::Ingest { src, dst, t }))
        }
        "query" => {
            let (src, dst, t) = triple("query")?;
            let lane = match parts.next() {
                None => 0,
                Some(v) => v
                    .parse::<usize>()
                    .map_err(|e| format!("query: bad lane: {e}"))?,
            };
            if parts.next().is_some() {
                return Err("query: trailing tokens".to_string());
            }
            Ok(Some(Command::Query { src, dst, t, lane }))
        }
        "publish" => Ok(Some(Command::Publish)),
        "stats" => Ok(Some(Command::Stats)),
        "metrics" => Ok(Some(Command::Metrics)),
        "health" => Ok(Some(Command::Health)),
        "watch" => {
            let n = match parts.next() {
                None => 5,
                Some(v) => v
                    .parse::<usize>()
                    .map_err(|e| format!("watch: bad count: {e}"))?,
            };
            if parts.next().is_some() {
                return Err("watch: trailing tokens".to_string());
            }
            if n == 0 || n > WATCH_MAX {
                return Err(format!("watch: count must be in 1..={WATCH_MAX}"));
            }
            Ok(Some(Command::Watch(n)))
        }
        "profile" => Ok(Some(Command::Profile)),
        "trace" => Ok(Some(Command::Trace)),
        "repl" => Ok(Some(Command::Repl)),
        "digest" => Ok(Some(Command::Digest)),
        "promote" => Ok(Some(Command::Promote)),
        "shutdown" => Ok(Some(Command::Shutdown)),
        "quit" => Ok(Some(Command::Quit)),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Executes one command, returning the reply line (`Quit` replies `bye`;
/// the session loop is responsible for actually ending).
pub fn respond(engine: &ServeEngine, cmd: Command) -> String {
    match cmd {
        Command::Ingest { src, dst, t } => match engine.ingest(src, dst, t) {
            Ok(e) => format!("ingested eid={}", e.eid),
            Err(msg) => format!("error {msg}"),
        },
        Command::Query { src, dst, t, lane } => match engine.submit_lane(src, dst, t, lane) {
            Ok(ticket) => {
                // a healthy engine resolves well inside the SLO; the bound
                // only fires when a worker is wedged (not crashed — a crash
                // resolves the ticket as WorkerFailed immediately), and
                // turns that into a typed reply instead of a hung client
                let policy = engine.admission_policy();
                let budget = policy.slo.saturating_mul(4).max(Duration::from_secs(2));
                match ticket.wait_timeout(budget) {
                    Some(Ok(r)) => format!("score {:.6} gen={}", r.prob, r.generation),
                    Some(Err(shed)) => format!("overloaded {shed}"),
                    None => format!(
                        "overloaded worker_failed lane={}",
                        lane.min(policy.lanes - 1)
                    ),
                }
            }
            Err(shed) => format!("overloaded {shed}"),
        },
        Command::Publish => format!("published gen={}", engine.publish()),
        Command::Stats => engine.stats().to_json(),
        Command::Metrics => render_metrics(engine),
        Command::Health => engine.health().health_json(),
        Command::Watch(n) => {
            // paced by the watchdog's own cadence so each line reflects a
            // fresh evaluation; the whole reply is flushed at once (clients
            // wanting live pacing should loop `watch 1` themselves)
            let every = engine.health().config().eval_every;
            let mut out = String::new();
            for i in 0..n {
                if i > 0 {
                    std::thread::sleep(every);
                    out.push('\n');
                }
                out.push_str(&engine.health().watch_line());
            }
            out
        }
        Command::Profile => {
            let folded = engine.health().occupancy_folded();
            if folded.is_empty() {
                "profile empty (no occupancy sweeps yet)".to_string()
            } else {
                let mut folded = folded;
                while folded.ends_with('\n') {
                    folded.pop();
                }
                folded
            }
        }
        Command::Trace => taser_obs::chrome_trace_json(),
        Command::Repl => engine.repl_status().to_json(),
        Command::Digest => {
            // publish first so the digest covers every ingest so far —
            // the number two nodes are compared by after failover
            let gen = engine.publish();
            format!("digest {:016x} gen={gen}", engine.snapshot_digest())
        }
        Command::Promote => match engine.promote() {
            Ok(next_eid) => format!("promoted next_eid={next_eid}"),
            Err(msg) => format!("error {msg}"),
        },
        Command::Shutdown => match engine.shutdown() {
            Ok(()) => "shutdown drained".to_string(),
            Err(e) => format!("error shutdown persist: {e}"),
        },
        Command::Quit => "bye".to_string(),
    }
}

/// The full Prometheus-text scrape behind the `metrics` verb: per-lane
/// serve counters, pool steal/park/wake tallies, and everything other
/// subsystems (cache epochs, index publishes) recorded in the global
/// [`taser_obs`] registry. The trailing newline is trimmed because the
/// session loop appends one.
fn render_metrics(engine: &ServeEngine) -> String {
    use taser_obs::export::{push_sample, push_type};
    let mut out = engine.stats().to_prometheus();
    let pc = rayon::pool_counters();
    for (name, v) in [
        ("taser_pool_steals_total", pc.steals),
        ("taser_pool_parks_total", pc.parks),
        ("taser_pool_wakes_total", pc.wakes),
        ("taser_pool_inline_runs_total", pc.inline_runs),
    ] {
        push_type(&mut out, name, "counter");
        push_sample(&mut out, name, v);
    }
    out.push_str(&taser_obs::global().render_prometheus());
    while out.ends_with('\n') {
        out.pop();
    }
    out
}

/// Client-side connection helpers for benches, smokes, and operator
/// scripts talking to a node that may still be binding its listener (or
/// mid-failover).
pub mod client {
    use std::io;
    use std::net::TcpStream;
    use std::time::{Duration, SystemTime};

    /// Dials `addr`, retrying up to `attempts` times with exponential
    /// backoff (starting at `base`, doubling, capped at 2 s) plus a
    /// little clock-derived jitter so a thundering herd of rejoining
    /// clients spreads out. Returns the last error once the budget is
    /// spent.
    pub fn connect_with_retry(addr: &str, attempts: u32, base: Duration) -> io::Result<TcpStream> {
        let mut delay = base.max(Duration::from_millis(1));
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match TcpStream::connect(addr) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts.max(1) {
                let jitter_ms = SystemTime::now()
                    .duration_since(SystemTime::UNIX_EPOCH)
                    .map_or(0, |d| u64::from(d.subsec_nanos()) % 16);
                std::thread::sleep(delay + Duration::from_millis(jitter_ms));
                delay = (delay * 2).min(Duration::from_secs(2));
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("connect_with_retry: zero attempts")))
    }
}

/// True for the error kinds a vanishing client produces: normal session
/// churn, not a server fault.
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::UnexpectedEof
    )
}

/// Runs one session: reads commands until `quit` or EOF, writing one flushed
/// reply per command.
///
/// Robust against misbehaving clients: bytes that are not UTF-8 get an
/// `error` reply and the session continues (reading raw lines, not
/// `BufRead::lines`, which would abort the whole session on the first
/// invalid byte), and a client that disconnects mid-read or mid-write
/// ends the session with `Ok(())` — only genuine I/O faults surface as
/// errors.
pub fn run_session(
    engine: &ServeEngine,
    mut reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    let mut raw = Vec::new();
    loop {
        raw.clear();
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e) if is_disconnect(&e) => return Ok(()),
            Err(e) => return Err(e),
        }
        let reply = match std::str::from_utf8(&raw) {
            Err(_) => "error input is not valid UTF-8".to_string(),
            Ok(line) => match parse(line) {
                Ok(None) => continue,
                Ok(Some(cmd)) => {
                    let reply = respond(engine, cmd);
                    if cmd == Command::Quit || cmd == Command::Shutdown {
                        match writeln!(writer, "{reply}").and_then(|()| writer.flush()) {
                            Err(e) if !is_disconnect(&e) => return Err(e),
                            _ => return Ok(()),
                        }
                    }
                    reply
                }
                Err(msg) => format!("error {msg}"),
            },
        };
        match writeln!(writer, "{reply}").and_then(|()| writer.flush()) {
            Ok(()) => {}
            Err(e) if is_disconnect(&e) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

/// Accept loop: one thread per TCP connection, each running a session
/// against the shared engine. Blocks forever (callers spawn it). Transient
/// accept failures (a client resetting mid-handshake, momentary fd
/// pressure) are logged and survived — they must not take the server down.
pub fn serve_tcp(engine: Arc<ServeEngine>, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("accept error (continuing): {e}");
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        let engine = engine.clone();
        std::thread::spawn(move || {
            let reader = std::io::BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let _ = run_session(&engine, reader, stream);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::BatchPolicy;
    use crate::engine::ServeConfig;
    use std::time::Duration;
    use taser_graph::events::EventLog;
    use taser_graph::feats::FeatureMatrix;
    use taser_models::artifact::{ArtifactBackbone, ArtifactPolicy, ModelArtifact, ModelSpec};

    fn artifact() -> ModelArtifact {
        ModelArtifact::init(
            ModelSpec {
                backbone: ArtifactBackbone::GraphMixer,
                in_dim: 2,
                edge_dim: 0,
                hidden: 8,
                time_dim: 4,
                heads: 2,
                n_neighbors: 3,
                dropout: 0.0,
                policy: ArtifactPolicy::MostRecent,
            },
            Some(FeatureMatrix::from_vec(
                (0..40).map(|x| x as f32 * 0.1).collect(),
                2,
            )),
            None,
            3,
        )
    }

    fn seed_log() -> EventLog {
        EventLog::from_unsorted((0..10u32).map(|i| (i % 4, 4 + i % 4, i as f64)).collect())
    }

    fn engine() -> ServeEngine {
        ServeEngine::new(
            artifact(),
            seed_log(),
            ServeConfig {
                workers: 1,
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_millis(1),
                },
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn parse_accepts_valid_commands() {
        assert_eq!(
            parse("ingest 1 2 3.5").unwrap(),
            Some(Command::Ingest {
                src: 1,
                dst: 2,
                t: 3.5
            })
        );
        assert_eq!(
            parse("  query 7 9 100  ").unwrap(),
            Some(Command::Query {
                src: 7,
                dst: 9,
                t: 100.0,
                lane: 0
            })
        );
        assert_eq!(
            parse("query 7 9 100 1").unwrap(),
            Some(Command::Query {
                src: 7,
                dst: 9,
                t: 100.0,
                lane: 1
            }),
            "optional fourth token selects the priority lane"
        );
        assert_eq!(parse("publish").unwrap(), Some(Command::Publish));
        assert_eq!(parse("stats").unwrap(), Some(Command::Stats));
        assert_eq!(parse("metrics").unwrap(), Some(Command::Metrics));
        assert_eq!(parse("health").unwrap(), Some(Command::Health));
        assert_eq!(
            parse("watch").unwrap(),
            Some(Command::Watch(5)),
            "watch defaults to 5 lines"
        );
        assert_eq!(parse("watch 3").unwrap(), Some(Command::Watch(3)));
        assert_eq!(parse("profile").unwrap(), Some(Command::Profile));
        assert_eq!(parse("trace").unwrap(), Some(Command::Trace));
        assert_eq!(parse("repl").unwrap(), Some(Command::Repl));
        assert_eq!(parse("digest").unwrap(), Some(Command::Digest));
        assert_eq!(parse("promote").unwrap(), Some(Command::Promote));
        assert_eq!(parse("shutdown").unwrap(), Some(Command::Shutdown));
        assert_eq!(parse("quit").unwrap(), Some(Command::Quit));
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("# comment").unwrap(), None);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("query 1 2").is_err(), "missing t");
        assert!(parse("query a 2 3").is_err(), "non-numeric src");
        assert!(parse("query 1 2 3 x").is_err(), "non-numeric lane");
        assert!(parse("query 1 2 3 0 9").is_err(), "trailing tokens");
        assert!(parse("ingest 1 2 3 4").is_err(), "ingest takes no lane");
        assert!(parse("watch 0").is_err(), "zero lines");
        assert!(parse("watch 100000").is_err(), "absurd line count");
        assert!(parse("watch 2 3").is_err(), "trailing tokens");
        assert!(parse("watch x").is_err(), "non-numeric count");
        assert!(parse("frobnicate").is_err());
    }

    #[test]
    fn health_watch_profile_and_trace_verbs_respond() {
        let engine = engine();
        for i in 0..4u32 {
            respond(
                &engine,
                Command::Query {
                    src: i % 4,
                    dst: 4 + i % 4,
                    t: 40.0,
                    lane: 0,
                },
            );
        }
        let health = respond(&engine, Command::Health);
        assert!(health.starts_with("{\"level\":\""), "{health}");
        assert!(health.contains("\"watchdog\":\"on\""), "{health}");
        assert!(health.contains("\"firing\":["), "{health}");
        assert!(health.contains("\"lanes\":[{\"lane\":0,"), "{health}");
        let watch = respond(&engine, Command::Watch(1));
        assert!(watch.starts_with("t="), "{watch}");
        assert!(watch.contains("level="), "{watch}");
        assert!(watch.contains("burn0="), "{watch}");
        let trace = respond(&engine, Command::Trace);
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        // fresh engine: the sampler may or may not have swept yet; either
        // the placeholder or folded frames, never an empty reply
        let profile = respond(&engine, Command::Profile);
        assert!(!profile.is_empty());
    }

    #[test]
    fn scripted_session_end_to_end() {
        let engine = engine();
        let script = "\
# warm-up
ingest 0 5 20
ingest 1 6 21
publish
query 0 5 30
stats
bogus
quit
query 9 9 99
";
        let mut out = Vec::new();
        run_session(&engine, script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            7,
            "two ingests, publish, query, stats, error, bye: {text}"
        );
        assert!(lines[0].starts_with("ingested eid="));
        assert!(lines[1].starts_with("ingested eid="));
        assert_eq!(lines[2], "published gen=1");
        assert!(lines[3].starts_with("score 0."), "{}", lines[3]);
        assert!(lines[3].contains("gen=1"));
        assert!(lines[4].starts_with('{'), "stats is JSON: {}", lines[4]);
        // `bogus` errored but did not end the session; `quit` did, so the
        // trailing query is never answered
        assert!(lines[5].starts_with("error"));
        assert_eq!(lines[6], "bye");
    }

    #[test]
    fn metrics_reply_is_well_formed_prometheus() {
        let engine = engine();
        for i in 0..4u32 {
            respond(
                &engine,
                Command::Query {
                    src: i % 4,
                    dst: 4 + i % 4,
                    t: 40.0,
                    lane: 0,
                },
            );
        }
        let text = respond(&engine, Command::Metrics);
        assert!(!text.ends_with('\n'), "session loop appends the newline");
        assert!(text.contains("# TYPE taser_serve_queries_total counter"));
        assert!(text.contains("taser_pool_steals_total "));
        assert!(text.contains("taser_pool_parks_total "));
        let parsed = taser_obs::parse_prometheus(&text);
        let admitted = parsed
            .iter()
            .find(|(n, _)| n == "taser_serve_admitted_total{lane=\"0\"}")
            .expect("per-lane admitted present")
            .1;
        assert_eq!(admitted, taser_obs::PromValue::Int(4));
        // the scrape is internally consistent: admitted splits exactly into
        // scored + shed-after-admission + queued + in-flight (the snapshot
        // fix; door-sheds are never admitted)
        let get = |n: &str| match parsed.iter().find(|(name, _)| name == n).unwrap().1 {
            taser_obs::PromValue::Int(v) => v,
            other => panic!("{n} not an integer: {other:?}"),
        };
        let scored = get("taser_serve_scored_total{lane=\"0\"}");
        let shed_dl = get("taser_serve_shed_total{lane=\"0\",reason=\"deadline\"}");
        let queued = get("taser_serve_queue_depth{lane=\"0\"}");
        let in_flight = get("taser_serve_in_flight{lane=\"0\"}");
        assert_eq!(4, scored + shed_dl + queued + in_flight);
    }

    #[test]
    fn query_probability_is_in_unit_interval() {
        let engine = engine();
        let reply = respond(
            &engine,
            Command::Query {
                src: 0,
                dst: 5,
                t: 50.0,
                lane: 0,
            },
        );
        let prob: f32 = reply
            .strip_prefix("score ")
            .and_then(|r| r.split_whitespace().next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(prob > 0.0 && prob < 1.0, "{reply}");
    }

    #[test]
    fn overloaded_reply_is_typed_not_an_error() {
        // a lane of capacity 1 behind a worker lingering on a huge batch:
        // the first query parks in the lane, the second sheds at the door
        let engine = ServeEngine::new(
            artifact(),
            seed_log(),
            ServeConfig {
                workers: 1,
                batch: BatchPolicy {
                    max_batch: 1024,
                    max_wait: Duration::from_secs(60),
                },
                slo: Duration::from_secs(2),
                slo_margin: Some(Duration::from_millis(1800)),
                queue_cap: 1,
                lanes: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let held = engine.submit(0, 5, 40.0).expect("first query admitted");
        let reply = respond(
            &engine,
            Command::Query {
                src: 1,
                dst: 6,
                t: 40.0,
                lane: 0,
            },
        );
        assert_eq!(reply, "overloaded queue_full lane=0", "typed shed reply");
        assert!(held.wait().is_ok(), "parked query still scores");
    }

    #[test]
    fn invalid_utf8_gets_an_error_reply_and_the_session_continues() {
        let engine = engine();
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(b"query 0 5 30\n");
        script.extend_from_slice(&[0xff, 0xfe, 0x80, b'\n']); // not UTF-8
        script.extend_from_slice(b"publish\nquit\n");
        let mut out = Vec::new();
        run_session(&engine, script.as_slice(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].starts_with("score "), "{}", lines[0]);
        assert_eq!(lines[1], "error input is not valid UTF-8");
        assert!(lines[2].starts_with("published gen="), "{}", lines[2]);
        assert_eq!(lines[3], "bye");
    }

    #[test]
    fn wedged_worker_yields_typed_worker_failed_not_a_hung_client() {
        use crate::fault::FaultPlan;
        // the lone worker stalls far past the session's reply budget
        // (max(4*slo, 2s)); the query reply must come back typed anyway
        let engine = ServeEngine::new(
            artifact(),
            seed_log(),
            ServeConfig {
                workers: 1,
                batch: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_millis(1),
                },
                slo: Duration::from_millis(100),
                faults: FaultPlan {
                    worker_stall: Duration::from_secs(4),
                    ..FaultPlan::default()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let start = std::time::Instant::now();
        let reply = respond(
            &engine,
            Command::Query {
                src: 0,
                dst: 5,
                t: 40.0,
                lane: 0,
            },
        );
        assert_eq!(reply, "overloaded worker_failed lane=0");
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "reply must beat the stall, got it after {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn client_disconnect_mid_session_leaves_the_listener_alive() {
        use std::io::{BufRead, BufReader, Write};
        let engine = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let _ = serve_tcp(engine, listener);
            });
        }
        // a client that sends multi-line-reply commands and vanishes
        // without reading, and one that sends garbage bytes and vanishes
        for payload in [&b"metrics\nmetrics\nmetrics\n"[..], &[0xff, 0xfe, b'\n']] {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            conn.write_all(payload).unwrap();
            drop(conn);
        }
        // the accept loop and a fresh session still work
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"query 1 5 40\nquit\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("score "), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
    }

    #[test]
    fn replication_verbs_respond_and_shutdown_ends_the_session() {
        let engine = engine();
        let repl = respond(&engine, Command::Repl);
        assert!(repl.starts_with("{\"role\":\"standalone\""), "{repl}");
        assert!(repl.contains("\"lag\":0"), "{repl}");
        assert!(repl.contains("\"last_feed_ms\":null"), "{repl}");
        let digest = respond(&engine, Command::Digest);
        assert!(digest.starts_with("digest "), "{digest}");
        assert!(digest.contains(" gen="), "{digest}");
        assert_eq!(
            digest,
            respond(&engine, Command::Digest).replace("gen=2", "gen=1"),
            "digest is stable when nothing was ingested in between"
        );
        // promote on a non-replica is a typed error, not a panic
        assert_eq!(respond(&engine, Command::Promote), "error not a replica");

        // shutdown replies, drains, and ends the session; trailing
        // commands are never answered and late queries shed typed
        let script = "ingest 0 5 20\nshutdown\nstats\n";
        let mut out = Vec::new();
        run_session(&engine, script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].starts_with("ingested eid="), "{}", lines[0]);
        assert_eq!(lines[1], "shutdown drained");
        assert!(engine.is_sealed());
        assert_eq!(
            respond(
                &engine,
                Command::Query {
                    src: 0,
                    dst: 5,
                    t: 40.0,
                    lane: 0
                }
            ),
            "overloaded queue_full lane=0"
        );
    }

    #[test]
    fn connect_with_retry_rides_out_a_late_binding_listener() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // refuse until the server "comes up": drop the listener, redial the
        // same port from a delayed thread
        drop(listener);
        let addr2 = addr.clone();
        let rebind = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let listener = TcpListener::bind(&addr2).unwrap();
            let engine = Arc::new(engine());
            let _ = serve_tcp(engine, listener);
        });
        let conn = client::connect_with_retry(&addr, 8, Duration::from_millis(20))
            .expect("retry outlives the bind gap");
        let mut conn = conn;
        conn.write_all(b"quit\n").unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
        drop(rebind); // serve_tcp never returns; leave the thread parked

        // a dead address exhausts the budget with the connect error
        assert!(client::connect_with_retry("127.0.0.1:1", 2, Duration::from_millis(1)).is_err());
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let engine = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let engine = engine.clone();
            std::thread::spawn(move || {
                let _ = serve_tcp(engine, listener);
            });
        }
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"query 1 5 40\nquit\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("score "), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
    }
}
