//! Primary/replica WAL-shipping replication.
//!
//! PR 9 made a single process crash-safe; this module makes the *service*
//! survive the process. A primary streams its accepted events to N
//! replicas as the exact CRC-checked frames the WAL writes to disk
//! (`taser_graph::wal::encode_frame` — the wire format IS the disk
//! format), each replica applies them into its own [`crate::SnapshotStore`]
//! and serves read-only `query` traffic, and on primary death an operator
//! (or the CI smoke) promotes a replica, which seals its position and
//! starts accepting writes.
//!
//! # Topology and handshake
//!
//! Every feed connection carries the same duplex protocol; only who dials
//! differs:
//!
//! * **Pull** (`--replicate-from`): the replica dials the primary's
//!   [`ReplListener`] and sends a `TRPL` hello carrying the next event id
//!   it needs. The primary serves the feed from there.
//! * **Push** (`--replicate-to`): the primary dials the *replica's*
//!   listener with a `TPSH` hello; the replica answers with its own
//!   `TRPL` hello and consumes the feed over the same socket.
//!
//! Feed messages are tagged: `E` + WAL frame (one event), `H` + `u32`
//! heartbeat (the primary's next eid, so an idle replica still tracks
//! lag), `S` + `u64` length + a full `TCKP` checkpoint image (snapshot
//! bootstrap for an empty replica — the same bytes `Checkpoint::save`
//! puts on disk). The replica acks `A` + `u32` (its next eid) on the
//! reverse path; the hub tracks acks per peer to compute replica lag.
//!
//! # Catch-up is recovery over TCP
//!
//! Event ids are dense (event *i* has eid *i*), so a replica's position is
//! one integer. After any interruption — partition, dropped frame,
//! in-transit corruption — the replica simply reconnects and re-hellos at
//! its current next eid; re-sent frames it already holds are deduped by
//! eid exactly like WAL replay after a crash. Nothing is negotiated,
//! nothing can be applied twice, and a corrupt frame can never be applied
//! at all (the CRC travels with the frame).
//!
//! # Fault injection
//!
//! The hub honors [`LinkFaults`] from the engine's
//! [`crate::fault::FaultPlan`]: per-frame delay, and one-shot drop /
//! duplicate / corrupt-in-transit keyed on a hub-wide frame ordinal (so a
//! rejoin does not re-fire the fault forever). [`ReplicationHub::set_partitioned`]
//! severs every feed at once for partition/rejoin chaos tests.

use crate::engine::ServeEngine;
use crate::fault::LinkFaults;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;
use taser_graph::events::Event;
use taser_graph::wal::{self, Checkpoint, FrameParse, EVENT_BYTES, FRAME_BYTES};

/// Hello magic sent by a replica (or answered to a `TPSH` dial-in):
/// `TRPL` + version + the next eid the replica needs.
pub const REPL_MAGIC: [u8; 4] = *b"TRPL";
/// Hello magic a primary sends when it dials a replica
/// (`--replicate-to`): `TPSH` + version, 8 bytes — the position travels
/// the other way, in the replica's answering `TRPL` hello.
pub const PUSH_MAGIC: [u8; 4] = *b"TPSH";
/// Replication wire-protocol version.
pub const REPL_VERSION: u32 = 1;

/// One event, as a WAL frame.
const TAG_EVENT: u8 = b'E';
/// Primary's next eid; keeps an idle replica's lag fresh.
const TAG_HEARTBEAT: u8 = b'H';
/// Full checkpoint image for snapshot bootstrap.
const TAG_SNAPSHOT: u8 = b'S';
/// Replica ack: its next eid after applying.
const TAG_ACK: u8 = b'A';

/// Bytes of one `E` message body (`[len][crc][payload]`).
const FRAME_WIRE: usize = FRAME_BYTES + EVENT_BYTES;
/// Heartbeat cadence while a feed is idle, and the replica's read
/// timeout (so both sides notice stop flags promptly).
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);
/// Replicas ack at least every this many applied events (and on every
/// heartbeat), bounding how stale the primary's lag view can get.
const ACK_EVERY: u64 = 64;
/// Refuse snapshot images larger than this (a corrupt length prefix must
/// not turn into an unbounded allocation).
const SNAPSHOT_MAX: u64 = 1 << 31;

// ---------------------------------------------------------------------------
// Hub: the primary's fan-out state.
// ---------------------------------------------------------------------------

struct HubInner {
    /// Every event the primary holds, in eid order (`events[i].eid == i`).
    events: Vec<Event>,
    /// Node-id space high-water mark, shipped in snapshot images.
    num_nodes: usize,
    seeded: bool,
}

/// Per-connection replica bookkeeping.
pub struct PeerState {
    addr: String,
    /// Next eid the replica has acked (it holds everything below this).
    acked: AtomicU32,
    /// Frames shipped to this peer over this connection.
    sent: AtomicU64,
    gone: AtomicBool,
}

impl PeerState {
    /// Remote address, for the `repl` verb's JSON.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Next eid this replica has acked.
    pub fn acked(&self) -> u32 {
        self.acked.load(Ordering::Relaxed)
    }

    /// Frames shipped over this connection.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

/// The primary side of replication: the full event history plus every
/// connected peer's progress. [`crate::SnapshotStore::attach_replication`]
/// seeds it and then offers every accepted ingest under the ingest lock,
/// so feeds observe frames in strict eid order.
pub struct ReplicationHub {
    inner: Mutex<HubInner>,
    cv: Condvar,
    faults: LinkFaults,
    /// Hub-wide shipped-frame ordinal driving the one-shot link faults.
    frame_seq: AtomicU64,
    partitioned: AtomicBool,
    stopped: AtomicBool,
    snapshots_sent: AtomicU64,
    /// High-water ack across all peers ever seen — keeps `lag()` honest
    /// while a partition has severed every live connection.
    last_acked: AtomicU32,
    ever_had_peer: AtomicBool,
    peers: Mutex<Vec<Arc<PeerState>>>,
}

impl ReplicationHub {
    /// An empty, unseeded hub with the given link-fault plan.
    pub fn new(faults: LinkFaults) -> Arc<Self> {
        Arc::new(ReplicationHub {
            inner: Mutex::new(HubInner {
                events: Vec::new(),
                num_nodes: 0,
                seeded: false,
            }),
            cv: Condvar::new(),
            faults,
            frame_seq: AtomicU64::new(0),
            partitioned: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            snapshots_sent: AtomicU64::new(0),
            last_acked: AtomicU32::new(0),
            ever_had_peer: AtomicBool::new(false),
            peers: Mutex::new(Vec::new()),
        })
    }

    /// Installs the primary's existing history (called once, under the
    /// store's ingest lock, by `attach_replication`).
    pub fn seed(&self, events: Vec<Event>, num_nodes: usize) {
        let mut inner = self.inner.lock().expect("hub lock poisoned");
        assert!(!inner.seeded, "hub seeded twice");
        inner.num_nodes = num_nodes.max(
            events
                .iter()
                .map(|e| e.src.max(e.dst) as usize + 1)
                .max()
                .unwrap_or(0),
        );
        inner.events = events;
        inner.seeded = true;
        drop(inner);
        self.cv.notify_all();
    }

    /// Appends one accepted event (called under the store's ingest lock,
    /// so eid order on the feed matches ingest order).
    pub fn append(&self, e: Event) {
        let mut inner = self.inner.lock().expect("hub lock poisoned");
        debug_assert_eq!(e.eid as usize, inner.events.len(), "dense eids");
        inner.num_nodes = inner.num_nodes.max(e.src.max(e.dst) as usize + 1);
        inner.events.push(e);
        drop(inner);
        self.cv.notify_all();
    }

    /// The next eid the primary will assign (== events held).
    pub fn next_eid(&self) -> u32 {
        self.inner.lock().expect("hub lock poisoned").events.len() as u32
    }

    /// Events the slowest replica is behind the primary. Uses live peers'
    /// acks when connected and the high-water ack during a partition (so
    /// the lag gauge keeps growing while the link is down); 0 until a
    /// replica has ever connected.
    pub fn lag(&self) -> u64 {
        if !self.ever_had_peer.load(Ordering::Relaxed) {
            return 0;
        }
        let len = self.next_eid() as u64;
        let peers = self.peers.lock().expect("peer lock poisoned");
        let live_min = peers
            .iter()
            .filter(|p| !p.gone.load(Ordering::Relaxed))
            .map(|p| p.acked.load(Ordering::Relaxed))
            .min();
        let acked = live_min.unwrap_or_else(|| self.last_acked.load(Ordering::Relaxed));
        len.saturating_sub(acked as u64)
    }

    /// Currently connected peers.
    pub fn peer_count(&self) -> usize {
        self.peers
            .lock()
            .expect("peer lock poisoned")
            .iter()
            .filter(|p| !p.gone.load(Ordering::Relaxed))
            .count()
    }

    /// Snapshot of connected peers, for the `repl` verb.
    pub fn peers(&self) -> Vec<Arc<PeerState>> {
        self.peers
            .lock()
            .expect("peer lock poisoned")
            .iter()
            .filter(|p| !p.gone.load(Ordering::Relaxed))
            .cloned()
            .collect()
    }

    /// Snapshot bootstraps served so far.
    pub fn snapshots_sent(&self) -> u64 {
        self.snapshots_sent.load(Ordering::Relaxed)
    }

    /// Severs (or restores) every feed at once: while partitioned, serving
    /// loops exit, the listener refuses feed hellos, and replicas spin in
    /// their reconnect loop. Clearing it lets the next reconnect through —
    /// catch-up needs no other coordination.
    pub fn set_partitioned(&self, on: bool) {
        self.partitioned.store(on, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Whether the injected partition is active.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    /// Permanently stops every serving loop (engine shutdown).
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    fn register_peer(&self, addr: String, acked: u32) -> Arc<PeerState> {
        let peer = Arc::new(PeerState {
            addr,
            acked: AtomicU32::new(acked),
            sent: AtomicU64::new(0),
            gone: AtomicBool::new(false),
        });
        self.last_acked.fetch_max(acked, Ordering::Relaxed);
        self.ever_had_peer.store(true, Ordering::Relaxed);
        self.peers
            .lock()
            .expect("peer lock poisoned")
            .push(peer.clone());
        peer
    }

    fn unregister_peer(&self, peer: &Arc<PeerState>) {
        peer.gone.store(true, Ordering::Relaxed);
        self.peers
            .lock()
            .expect("peer lock poisoned")
            .retain(|p| !Arc::ptr_eq(p, peer));
    }
}

// ---------------------------------------------------------------------------
// Wire helpers.
// ---------------------------------------------------------------------------

fn u32_at(buf: &[u8]) -> u32 {
    u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]])
}

fn write_hello(stream: &mut TcpStream, magic: [u8; 4], next_eid: u32) -> io::Result<()> {
    let mut buf = [0u8; 12];
    buf[0..4].copy_from_slice(&magic);
    buf[4..8].copy_from_slice(&REPL_VERSION.to_le_bytes());
    buf[8..12].copy_from_slice(&next_eid.to_le_bytes());
    stream.write_all(&buf)
}

/// Reads exactly `buf.len()` bytes, riding out read-timeout ticks (the
/// sockets run 200ms timeouts so loops can poll stop flags). `interrupt`
/// is polled on every tick; when it reports true the read gives up with
/// `Interrupted`. A cleanly closed socket yields `UnexpectedEof`.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    interrupt: &dyn Fn() -> bool,
) -> io::Result<()> {
    let mut off = 0;
    while off < buf.len() {
        if interrupt() {
            return Err(io::Error::new(ErrorKind::Interrupted, "stopped"));
        }
        match stream.read(&mut buf[off..]) {
            Ok(0) => return Err(io::Error::new(ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => off += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Primary: serving one feed.
// ---------------------------------------------------------------------------

/// Serves one replica connection from `hello_next` until the link drops,
/// the hub partitions/stops, or `stop` is raised. Holds only the hub (no
/// engine `Arc`), so a dying engine is never pinned by its feeds.
fn serve_peer(
    hub: &Arc<ReplicationHub>,
    mut stream: TcpStream,
    hello_next: u32,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let addr = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    let peer = hub.register_peer(addr, hello_next);

    // Reverse path: acks arrive on the same socket; a clone blocks in
    // read_exact until the serve loop shuts the socket down.
    let ack_reader = stream.try_clone().ok().map(|mut s| {
        let peer = peer.clone();
        let hub = hub.clone();
        std::thread::spawn(move || {
            let mut buf = [0u8; 5];
            while s.read_exact(&mut buf).is_ok() {
                if buf[0] != TAG_ACK {
                    break;
                }
                let n = u32_at(&buf[1..]);
                peer.acked.fetch_max(n, Ordering::Relaxed);
                hub.last_acked.fetch_max(n, Ordering::Relaxed);
            }
        })
    });

    let mut cursor = hello_next as usize;
    let mut ok = true;

    // Snapshot bootstrap: an empty replica gets the whole history as one
    // checkpoint image instead of millions of frames. Encoded under the
    // hub lock so the image is a consistent prefix; the cursor then tails
    // from exactly its end.
    {
        let inner = hub.inner.lock().expect("hub lock poisoned");
        cursor = cursor.min(inner.events.len());
        if hello_next == 0 && !inner.events.is_empty() {
            let image =
                Checkpoint::encode(&inner.events, inner.num_nodes, inner.events.len() as u32);
            cursor = inner.events.len();
            drop(inner);
            let mut msg = Vec::with_capacity(9 + image.len());
            msg.push(TAG_SNAPSHOT);
            msg.extend_from_slice(&(image.len() as u64).to_le_bytes());
            msg.extend_from_slice(&image);
            ok = stream.write_all(&msg).is_ok();
            if ok {
                hub.snapshots_sent.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    while ok && !stop.load(Ordering::Relaxed) && !hub.is_stopped() && !hub.is_partitioned() {
        let next = {
            let inner = hub.inner.lock().expect("hub lock poisoned");
            if cursor < inner.events.len() {
                Some(inner.events[cursor])
            } else {
                let (inner, _timeout) = hub
                    .cv
                    .wait_timeout(inner, HEARTBEAT_EVERY)
                    .expect("hub lock poisoned");
                (cursor < inner.events.len()).then(|| inner.events[cursor])
            }
        };
        match next {
            None => {
                // idle (or just woken to re-check flags): heartbeat so the
                // replica's lag view and staleness clock stay fresh
                let mut msg = [0u8; 5];
                msg[0] = TAG_HEARTBEAT;
                msg[1..5].copy_from_slice(&hub.next_eid().to_le_bytes());
                ok = stream.write_all(&msg).is_ok();
            }
            Some(ev) => {
                let seq = hub.frame_seq.fetch_add(1, Ordering::Relaxed) + 1;
                let f = hub.faults;
                if !f.delay.is_zero() {
                    std::thread::sleep(f.delay);
                }
                if f.drop_frame == seq {
                    // vanish on the wire: the replica sees an eid gap and
                    // resyncs by reconnecting
                    cursor += 1;
                    continue;
                }
                let mut msg = Vec::with_capacity(1 + FRAME_WIRE);
                msg.push(TAG_EVENT);
                wal::encode_frame(&ev, &mut msg);
                if f.corrupt_frame == seq {
                    // flip a payload bit *after* the CRC was computed —
                    // the replica must reject the frame
                    let n = msg.len() - 1;
                    msg[n] ^= 0x40;
                }
                if f.duplicate_frame == seq {
                    msg.push(TAG_EVENT);
                    let mut again = Vec::with_capacity(FRAME_WIRE);
                    wal::encode_frame(&ev, &mut again);
                    msg.extend_from_slice(&again);
                }
                ok = stream.write_all(&msg).is_ok();
                if ok {
                    cursor += 1;
                    peer.sent.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    let _ = stream.shutdown(Shutdown::Both);
    if let Some(h) = ack_reader {
        let _ = h.join();
    }
    hub.unregister_peer(&peer);
}

// ---------------------------------------------------------------------------
// Replica: consuming a feed.
// ---------------------------------------------------------------------------

/// What [`ServeEngine::apply_replicated`] did with one feed event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Applied {
    /// The event was new and is now applied (and WAL-framed, on a durable
    /// replica).
    Fresh,
    /// Already held (re-sent after a resync, or a duplicated frame) —
    /// deduped by eid, same as WAL replay.
    Duplicate,
    /// The event skips ahead of the replica's next eid: frames were lost
    /// in transit. The consumer must resync (reconnect and re-hello).
    Gap,
    /// The engine is not accepting feed events (promoted or sealed).
    Rejected,
}

/// Consumes one feed connection until the link drops, a gap forces a
/// resync, the engine is promoted/sealed, or `stop` is raised. Returns
/// `Ok(())` when the caller should reconnect and resync, `Err` when it
/// should stop for good.
fn consume_feed(
    weak: &Weak<ServeEngine>,
    mut stream: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(HEARTBEAT_EVERY));
    let done = || {
        stop.load(Ordering::Relaxed)
            || weak
                .upgrade()
                .is_none_or(|e| !e.is_replica() || e.is_sealed())
    };
    let gone = || io::Error::new(ErrorKind::Interrupted, "replica stopped");
    let mut since_ack = 0u64;
    loop {
        let mut tag = [0u8; 1];
        match read_full(&mut stream, &mut tag, &done) {
            Ok(()) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => return Err(gone()),
            Err(_) => return Ok(()), // link dropped: reconnect + resync
        }
        let engine = weak.upgrade().ok_or_else(gone)?;
        let mut ack_now = false;
        match tag[0] {
            TAG_EVENT => {
                let mut frame = [0u8; FRAME_WIRE];
                if read_full(&mut stream, &mut frame, &done).is_err() {
                    return if done() { Err(gone()) } else { Ok(()) };
                }
                let event = match wal::parse_frame(&frame) {
                    FrameParse::Frame { event, .. } => event,
                    // corrupt-in-transit (or framing desync): drop the
                    // connection and resync from our acked position —
                    // the CRC guarantees the bad frame is never applied
                    _ => return Ok(()),
                };
                match engine.apply_replicated(event) {
                    Applied::Fresh => since_ack += 1,
                    Applied::Duplicate => {}
                    Applied::Gap => return Ok(()),
                    Applied::Rejected => return Err(gone()),
                }
                if since_ack >= ACK_EVERY {
                    ack_now = true;
                }
            }
            TAG_HEARTBEAT => {
                let mut n = [0u8; 4];
                if read_full(&mut stream, &mut n, &done).is_err() {
                    return if done() { Err(gone()) } else { Ok(()) };
                }
                engine.note_primary_next(u32_at(&n));
                ack_now = true;
            }
            TAG_SNAPSHOT => {
                let mut len = [0u8; 8];
                if read_full(&mut stream, &mut len, &done).is_err() {
                    return if done() { Err(gone()) } else { Ok(()) };
                }
                let len = u64::from_le_bytes(len);
                if len > SNAPSHOT_MAX {
                    return Ok(());
                }
                let mut image = vec![0u8; len as usize];
                if read_full(&mut stream, &mut image, &done).is_err() {
                    return if done() { Err(gone()) } else { Ok(()) };
                }
                let ckpt = match Checkpoint::decode(&image) {
                    Ok(c) => c,
                    Err(_) => return Ok(()), // corrupt image: resync
                };
                for ev in &ckpt.events {
                    match engine.apply_replicated(*ev) {
                        Applied::Fresh | Applied::Duplicate => {}
                        Applied::Gap => return Ok(()),
                        Applied::Rejected => return Err(gone()),
                    }
                }
                engine.note_snapshot_load(ckpt.events.len());
                engine.note_primary_next(ckpt.next_eid);
                ack_now = true;
            }
            _ => return Ok(()), // protocol desync: reconnect
        }
        if ack_now {
            since_ack = 0;
            let mut msg = [0u8; 5];
            msg[0] = TAG_ACK;
            msg[1..5].copy_from_slice(&engine.repl_next_eid().to_le_bytes());
            if stream.write_all(&msg).is_err() {
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Long-running roles: listener, pull replica, push primary.
// ---------------------------------------------------------------------------

/// A background replication thread (pull-replica or push-primary loop).
/// Dropping it raises the stop flag and joins the thread.
pub struct ReplThread {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplThread {
    fn spawn(stop: Arc<AtomicBool>, f: impl FnOnce() + Send + 'static) -> Self {
        ReplThread {
            stop,
            handle: Some(std::thread::spawn(f)),
        }
    }

    /// Raises the stop flag without joining (join happens on drop).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for ReplThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// TCP listener accepting replication connections (`--repl-listen`).
///
/// On a primary it serves `TRPL` feed hellos from joining replicas; on a
/// replica it answers `TPSH` dial-ins from a pushing primary. Holds only
/// a `Weak` engine reference: the accept loop exits when the engine is
/// dropped, so a listener can never keep a dead engine alive.
pub struct ReplListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplListener {
    /// Binds `bind` (e.g. `127.0.0.1:0`) and starts the accept loop.
    pub fn spawn(engine: &Arc<ServeEngine>, bind: &str) -> io::Result<ReplListener> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let weak = Arc::downgrade(engine);
        let handle = {
            let stop = stop.clone();
            std::thread::spawn(move || listener_loop(listener, weak, stop))
        };
        Ok(ReplListener {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ReplListener {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn listener_loop(listener: TcpListener, weak: Weak<ServeEngine>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if weak.upgrade().is_none() {
                    break;
                }
                let weak = weak.clone();
                let stop = stop.clone();
                std::thread::spawn(move || handle_conn(weak, stream, stop));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn handle_conn(weak: Weak<ServeEngine>, mut stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let done = || stop.load(Ordering::SeqCst);
    let mut header = [0u8; 8];
    if read_full(&mut stream, &mut header, &done).is_err() {
        return;
    }
    if u32_at(&header[4..]) != REPL_VERSION {
        return;
    }
    let magic: [u8; 4] = [header[0], header[1], header[2], header[3]];
    if magic == REPL_MAGIC {
        // a replica wants our feed
        let mut next = [0u8; 4];
        if read_full(&mut stream, &mut next, &done).is_err() {
            return;
        }
        let hub = match weak.upgrade().and_then(|e| e.repl_hub()) {
            Some(h) => h,
            None => return, // not a replicating primary
        };
        if hub.is_partitioned() {
            return; // injected partition: refuse the rejoin
        }
        let _ = stream.set_read_timeout(None);
        serve_peer(&hub, stream, u32_at(&next), &stop);
    } else if magic == PUSH_MAGIC {
        // a primary is pushing its feed at us: become (stay) a replica
        let next = match weak.upgrade() {
            Some(e) => match e.make_replica() {
                Ok(()) => e.repl_next_eid(),
                Err(_) => return, // promoted or sealed: refuse the feed
            },
            None => return,
        };
        if write_hello(&mut stream, REPL_MAGIC, next).is_err() {
            return;
        }
        let _ = consume_feed(&weak, stream, &stop);
    }
}

/// Starts a pull replica: marks the engine a replica and keeps a feed
/// connection to `primary` alive (reconnect + resync on any failure)
/// until the engine is promoted, sealed, or dropped.
pub fn start_replica(engine: &Arc<ServeEngine>, primary: String) -> Result<ReplThread, String> {
    engine.make_replica()?;
    let weak = Arc::downgrade(engine);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    Ok(ReplThread::spawn(stop, move || {
        replica_loop(weak, primary, stop2)
    }))
}

fn replica_loop(weak: Weak<ServeEngine>, primary: String, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        let next = match weak.upgrade() {
            Some(e) if e.is_replica() && !e.is_sealed() => e.repl_next_eid(),
            _ => return, // promoted, sealed, or dropped
        };
        let mut stream = match crate::protocol::client::connect_with_retry(
            &primary,
            5,
            Duration::from_millis(50),
        ) {
            Ok(s) => s,
            Err(_) => {
                // the primary may be down for a while (failover!) —
                // keep trying until promoted or stopped
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
        };
        if write_hello(&mut stream, REPL_MAGIC, next).is_err() {
            continue;
        }
        if consume_feed(&weak, stream, &stop).is_err() {
            return;
        }
        // Ok(()) = transient failure (link drop, gap, corrupt frame):
        // resync by reconnecting at whatever we now hold
    }
}

/// Starts the push side on a replicating primary: keeps dialing
/// `replica` and serving it the feed (`--replicate-to`). The engine must
/// already have replication enabled.
pub fn start_push(engine: &Arc<ServeEngine>, replica: String) -> Result<ReplThread, String> {
    let hub = engine
        .repl_hub()
        .ok_or_else(|| "replication not enabled on this engine".to_string())?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    Ok(ReplThread::spawn(stop, move || {
        push_loop(hub, replica, stop2)
    }))
}

fn push_loop(hub: Arc<ReplicationHub>, replica: String, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) && !hub.is_stopped() {
        if hub.is_partitioned() {
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        let mut stream = match crate::protocol::client::connect_with_retry(
            &replica,
            5,
            Duration::from_millis(50),
        ) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
        };
        // 8-byte dial-in hello: magic + version, no position — the
        // replica answers with its own hello carrying where it is
        let mut dial = [0u8; 8];
        dial[0..4].copy_from_slice(&PUSH_MAGIC);
        dial[4..8].copy_from_slice(&REPL_VERSION.to_le_bytes());
        if stream.write_all(&dial).is_err() {
            continue;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let done = || stop.load(Ordering::SeqCst);
        let mut hello = [0u8; 12];
        if read_full(&mut stream, &mut hello, &done).is_err() {
            continue;
        }
        if hello[0..4] != REPL_MAGIC || u32_at(&hello[4..]) != REPL_VERSION {
            std::thread::sleep(Duration::from_millis(200));
            continue;
        }
        let _ = stream.set_read_timeout(None);
        serve_peer(&hub, stream, u32_at(&hello[8..]), &stop);
        // serve_peer returned: link dropped or partition — reconnect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(eid: u32) -> Event {
        Event {
            src: eid % 3,
            dst: 3 + eid % 3,
            t: eid as f64,
            eid,
        }
    }

    #[test]
    fn hub_tracks_lag_through_peer_lifecycles() {
        let hub = ReplicationHub::new(LinkFaults::default());
        hub.seed((0..10).map(ev).collect(), 6);
        assert_eq!(hub.next_eid(), 10);
        assert_eq!(hub.lag(), 0, "no replica ever connected");

        let peer = hub.register_peer("test".into(), 4);
        assert_eq!(hub.peer_count(), 1);
        assert_eq!(hub.lag(), 6, "10 held, 4 acked");
        peer.acked.store(9, Ordering::Relaxed);
        hub.last_acked.fetch_max(9, Ordering::Relaxed);
        assert_eq!(hub.lag(), 1);

        // the peer vanishes (partition): lag falls back to the high-water
        // ack and keeps growing as the primary appends
        hub.unregister_peer(&peer);
        assert_eq!(hub.peer_count(), 0);
        assert_eq!(hub.lag(), 1);
        hub.append(ev(10));
        hub.append(ev(11));
        assert_eq!(hub.lag(), 3, "partitioned lag grows with appends");
    }

    #[test]
    fn hub_append_keeps_eids_dense_and_wakes_waiters() {
        let hub = ReplicationHub::new(LinkFaults::default());
        hub.seed(Vec::new(), 0);
        for i in 0..5 {
            hub.append(ev(i));
        }
        assert_eq!(hub.next_eid(), 5);
        let inner = hub.inner.lock().unwrap();
        for (i, e) in inner.events.iter().enumerate() {
            assert_eq!(e.eid as usize, i);
        }
    }

    #[test]
    fn partition_flag_round_trips_and_stop_is_sticky() {
        let hub = ReplicationHub::new(LinkFaults::default());
        assert!(!hub.is_partitioned());
        hub.set_partitioned(true);
        assert!(hub.is_partitioned());
        hub.set_partitioned(false);
        assert!(!hub.is_partitioned());
        assert!(!hub.is_stopped());
        hub.stop();
        assert!(hub.is_stopped());
    }
}
