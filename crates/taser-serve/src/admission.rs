//! Admission control: bounded priority lanes, SLO deadlines, and
//! deadline-aware batch formation.
//!
//! The serving front door is *open-loop*: arrivals are not bounded by the
//! number of in-flight callers (TGN-style streams keep coming whether or
//! not the server is keeping up), so the intake must bound its own queues.
//! [`AdmissionQueue`] admits each [`LinkQuery`] into one of a fixed set of
//! priority **lanes** (lane 0 drains first), each a bounded FIFO: when a
//! lane sits at `queue_cap` the submit is rejected immediately with a typed
//! [`Overloaded::QueueFull`] — load is shed at the door instead of growing
//! an unbounded backlog whose tail latency diverges under overload.
//!
//! Every admitted ticket carries an SLO deadline (`submitted + slo`), and
//! batch formation is deadline-aware: a batch closes when it is full, when
//! the oldest ticket has waited [`BatchPolicy::max_wait`], or when the
//! oldest ticket is within `slo_margin` of its deadline — whichever comes
//! first — so a near-deadline query is never held hostage by batch
//! filling. Tickets that expire while queued are shed at drain time with
//! [`Overloaded::DeadlineExceeded`]: scoring them would burn capacity
//! producing answers the SLO already voided.
//!
//! A third typed shed covers worker failure: when a scoring worker
//! panics mid-batch, the supervisor resolves every query it was holding
//! with [`Overloaded::WorkerFailed`] (see [`AdmissionQueue::fail_batch`])
//! — waiters get a typed error, never a panic or an unbounded hang, and
//! the admission identity stays exact through the failure.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One link-prediction question: "will `src` interact with `dst` at `t`?"
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkQuery {
    /// Query source node.
    pub src: u32,
    /// Query destination node.
    pub dst: u32,
    /// Query time (scores use interactions strictly before `t`).
    pub t: f64,
}

/// A fulfilled score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreResult {
    /// Interaction probability in (0, 1) (sigmoid of the predictor logit).
    pub prob: f32,
    /// Generation of the graph snapshot that produced the score.
    pub generation: u64,
}

/// Typed load-shedding rejection: the engine declined to score a query
/// rather than queue it without bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Overloaded {
    /// The lane's admission queue was at capacity when the query arrived.
    QueueFull {
        /// Lane the query targeted.
        lane: usize,
    },
    /// The query was admitted but its SLO deadline passed before a worker
    /// reached it; it was dropped from the queue unscored.
    DeadlineExceeded {
        /// Lane the query waited in.
        lane: usize,
    },
    /// The query was drained into a batch whose scoring worker panicked
    /// (or the engine shut down around it) before producing a score.
    /// Retryable: the supervisor respawns the worker.
    WorkerFailed {
        /// Lane the query was drained from.
        lane: usize,
    },
}

impl Overloaded {
    /// Lane the rejection applies to.
    pub fn lane(&self) -> usize {
        match *self {
            Overloaded::QueueFull { lane }
            | Overloaded::DeadlineExceeded { lane }
            | Overloaded::WorkerFailed { lane } => lane,
        }
    }
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Overloaded::QueueFull { lane } => write!(f, "queue_full lane={lane}"),
            Overloaded::DeadlineExceeded { lane } => write!(f, "deadline lane={lane}"),
            Overloaded::WorkerFailed { lane } => write!(f, "worker_failed lane={lane}"),
        }
    }
}

/// What a ticket resolves to: a score, or a typed shed.
pub type ScoreOutcome = Result<ScoreResult, Overloaded>;

/// Size/latency bounds for batch formation.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// Maximum queries per batch.
    pub max_batch: usize,
    /// Maximum time the oldest query waits for a batch to fill.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Admission-control knobs: lane count, per-lane capacity, SLO budget.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Batch-formation bounds.
    pub batch: BatchPolicy,
    /// Priority lanes (lane 0 drains first). At least 1.
    pub lanes: usize,
    /// Bounded per-lane queue depth; a full lane sheds with
    /// [`Overloaded::QueueFull`].
    pub queue_cap: usize,
    /// Per-query latency budget (submit → score). Admitted tickets carry
    /// `submitted + slo` as their deadline.
    pub slo: Duration,
    /// Close a forming batch once the oldest ticket is within this margin
    /// of its deadline, even if the batch is not full and `max_wait` has
    /// not elapsed.
    pub slo_margin: Duration,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        let slo = Duration::from_secs(5);
        AdmissionPolicy {
            batch: BatchPolicy::default(),
            lanes: 2,
            queue_cap: 4096,
            slo,
            slo_margin: slo / 4,
        }
    }
}

enum SlotState {
    Waiting,
    Done(ScoreOutcome),
}

struct Oneshot {
    slot: Mutex<SlotState>,
    cv: Condvar,
}

/// Caller's handle to an in-flight query.
pub struct ScoreTicket(Arc<Oneshot>);

impl fmt::Debug for ScoreTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ScoreTicket(..)")
    }
}

impl ScoreTicket {
    /// Blocks until the query resolves: a score, or a typed shed
    /// ([`Overloaded::DeadlineExceeded`] when it expired in the queue,
    /// [`Overloaded::WorkerFailed`] when its scoring worker died). Every
    /// drained ticket is guaranteed an outcome — a `Pending` dropped
    /// without one resolves as `WorkerFailed`, so `wait` cannot hang on a
    /// dead worker and never panics.
    pub fn wait(self) -> ScoreOutcome {
        let mut slot = self.0.slot.lock().expect("ticket lock poisoned");
        loop {
            match *slot {
                SlotState::Done(r) => return r,
                SlotState::Waiting => slot = self.0.cv.wait(slot).expect("ticket lock poisoned"),
            }
        }
    }

    /// Blocks up to `timeout`; `None` when the query is still in flight.
    /// Non-destructive: on timeout the ticket remains valid, so callers can
    /// poll again or fall back to a blocking [`ScoreTicket::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ScoreOutcome> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.0.slot.lock().expect("ticket lock poisoned");
        loop {
            if let SlotState::Done(r) = *slot {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (s, _) = self
                .0
                .cv
                .wait_timeout(slot, deadline - now)
                .expect("ticket lock poisoned");
            slot = s;
        }
    }
}

/// A query waiting in (or drained from) the admission queue.
pub struct Pending {
    /// The question.
    pub query: LinkQuery,
    /// Submission time (latency accounting).
    pub submitted: Instant,
    /// SLO deadline (`submitted + slo`); workers use it for met/missed
    /// accounting, the queue for expiry shedding.
    pub deadline: Instant,
    /// Priority lane the query was admitted to.
    pub lane: usize,
    ticket: Arc<Oneshot>,
    fulfilled: bool,
}

impl Pending {
    /// Delivers the score to the waiting caller.
    pub fn fulfill(self, result: ScoreResult) {
        self.resolve(Ok(result));
    }

    /// Delivers a typed shed to the waiting caller.
    pub fn reject(self, why: Overloaded) {
        self.resolve(Err(why));
    }

    fn resolve(mut self, outcome: ScoreOutcome) {
        self.fulfilled = true;
        let mut slot = self.ticket.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = SlotState::Done(outcome);
        drop(slot);
        self.ticket.cv.notify_all();
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // Dropped without an outcome (a worker panic unwound the batch, or
        // the engine was torn down around it): resolve the waiter with the
        // typed worker-failure shed so it cannot hang forever. This is the
        // last-resort path — the supervisor's `fail_batch` normally gets
        // there first *and* keeps the shed counters exact; this one only
        // guarantees liveness.
        let mut slot = self.ticket.slot.lock().unwrap_or_else(|p| p.into_inner());
        if matches!(*slot, SlotState::Waiting) {
            *slot = SlotState::Done(Err(Overloaded::WorkerFailed { lane: self.lane }));
        }
        drop(slot);
        self.ticket.cv.notify_all();
    }
}

/// Point-in-time admission counters for one lane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneAdmission {
    /// Queries admitted into the lane.
    pub admitted: u64,
    /// Queries rejected at the door (lane at capacity).
    pub shed_full: u64,
    /// Admitted queries dropped unscored after their deadline passed.
    pub shed_deadline: u64,
    /// Drained queries resolved as [`Overloaded::WorkerFailed`] because
    /// their scoring worker panicked mid-batch.
    pub shed_worker_failed: u64,
    /// Queries currently waiting in the lane.
    pub queued: u64,
    /// Queries drained into a batch but not yet recorded as scored.
    pub in_flight: u64,
}

struct LaneCounters {
    admitted: AtomicU64,
    shed_full: AtomicU64,
    shed_deadline: AtomicU64,
    /// Bumped (with the matching `in_flight` decrement) under the shared
    /// admission lock in [`AdmissionQueue::fail_batch`], so the failure
    /// transition is atomic from a snapshot reader's point of view.
    shed_worker_failed: AtomicU64,
    /// Drained-but-not-yet-recorded queries. Incremented under the shared
    /// lock at drain; decremented by the scoring worker while it holds its
    /// own metrics shard lock (see [`AdmissionQueue::mark_done`]) — which
    /// is exactly what lets [`ServeEngine::stats`] take a skew-free
    /// snapshot where `admitted == scored + shed_deadline +
    /// shed_worker_failed + queued + in_flight` holds as an identity, not
    /// just eventually.
    ///
    /// [`ServeEngine::stats`]: crate::engine::ServeEngine::stats
    in_flight: AtomicU64,
    /// Registry gauges mirroring the lane's queue depth and in-flight
    /// count, resolved once at construction and updated with relaxed
    /// stores on the admission path. Counter totals in a `metrics` scrape
    /// cannot show buildup *between* stats snapshots; these gauges can.
    /// (Named `taser_admission_*` — the stats renderer already emits
    /// `taser_serve_queue_depth`/`taser_serve_in_flight` from its own
    /// snapshot, and the two sources must not collide in one scrape.)
    depth_gauge: Arc<taser_obs::Gauge>,
    in_flight_gauge: Arc<taser_obs::Gauge>,
}

struct Shared {
    lanes: Vec<VecDeque<Pending>>,
    closed: bool,
}

/// MPMC admission queue: bounded priority lanes in, deadline-aware batches
/// out.
pub struct AdmissionQueue {
    shared: Mutex<Shared>,
    notify: Condvar,
    policy: AdmissionPolicy,
    counters: Vec<LaneCounters>,
}

impl AdmissionQueue {
    /// An open queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        assert!(policy.batch.max_batch >= 1, "max_batch must be positive");
        assert!(policy.lanes >= 1, "need at least one lane");
        assert!(policy.queue_cap >= 1, "queue_cap must be positive");
        AdmissionQueue {
            shared: Mutex::new(Shared {
                lanes: (0..policy.lanes).map(|_| VecDeque::new()).collect(),
                closed: false,
            }),
            notify: Condvar::new(),
            policy,
            counters: (0..policy.lanes)
                .map(|lane| LaneCounters {
                    admitted: AtomicU64::new(0),
                    shed_full: AtomicU64::new(0),
                    shed_deadline: AtomicU64::new(0),
                    shed_worker_failed: AtomicU64::new(0),
                    in_flight: AtomicU64::new(0),
                    depth_gauge: taser_obs::global()
                        .gauge(&format!("taser_admission_queue_depth{{lane=\"{lane}\"}}")),
                    in_flight_gauge: taser_obs::global()
                        .gauge(&format!("taser_admission_in_flight{{lane=\"{lane}\"}}")),
                })
                .collect(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Tries to admit a query into `lane` (clamped to the configured lane
    /// count). Returns the caller's ticket, or sheds immediately when the
    /// lane is at capacity. A closed queue (engine shutting down) sheds at
    /// the door with [`Overloaded::QueueFull`] — a draining server must
    /// answer late clients with typed backpressure, not a panic.
    pub fn submit(&self, query: LinkQuery, lane: usize) -> Result<ScoreTicket, Overloaded> {
        let lane = lane.min(self.policy.lanes - 1);
        let mut q = self.shared.lock().expect("admission lock poisoned");
        if q.closed {
            self.counters[lane]
                .shed_full
                .fetch_add(1, Ordering::Relaxed);
            return Err(Overloaded::QueueFull { lane });
        }
        if q.lanes[lane].len() >= self.policy.queue_cap {
            self.counters[lane]
                .shed_full
                .fetch_add(1, Ordering::Relaxed);
            return Err(Overloaded::QueueFull { lane });
        }
        let submitted = Instant::now();
        let ticket = Arc::new(Oneshot {
            slot: Mutex::new(SlotState::Waiting),
            cv: Condvar::new(),
        });
        q.lanes[lane].push_back(Pending {
            query,
            submitted,
            deadline: submitted + self.policy.slo,
            lane,
            ticket: ticket.clone(),
            fulfilled: false,
        });
        self.counters[lane].admitted.fetch_add(1, Ordering::Relaxed);
        self.counters[lane]
            .depth_gauge
            .set(q.lanes[lane].len() as i64);
        drop(q);
        self.notify.notify_one();
        Ok(ScoreTicket(ticket))
    }

    /// Queries currently waiting across all lanes.
    pub fn backlog(&self) -> usize {
        self.shared
            .lock()
            .expect("admission lock poisoned")
            .lanes
            .iter()
            .map(VecDeque::len)
            .sum()
    }

    /// Per-lane admission counters (admitted / shed at door / shed expired
    /// / queued / in flight), read under the shared lock so the lanes are
    /// mutually consistent.
    pub fn lane_admission(&self) -> Vec<LaneAdmission> {
        self.freeze().lanes()
    }

    /// [`AdmissionQueue::lane_admission`] into caller-owned storage
    /// (`out.len()` must equal the lane count). Allocation-free: the health
    /// watchdog samples lanes on a fixed period and must not allocate in
    /// steady state.
    pub fn lane_admission_into(&self, out: &mut [LaneAdmission]) {
        self.freeze().lanes_into(out);
    }

    /// Takes the admission lock and holds it for the guard's lifetime,
    /// freezing submits, door sheds, expiry sheds, and batch drains.
    ///
    /// The guard does **not** sample the counters at freeze time — call
    /// [`FrozenAdmission::lanes`] when every lock the snapshot depends on
    /// is held. The scoring side (`in_flight` decrement + scored recording)
    /// runs under per-worker metrics shard locks, not this lock, so a
    /// caller wanting the exact identity
    /// `admitted = scored + shed_deadline + shed_worker_failed + queued +
    /// in_flight` must freeze first, acquire *all* shard locks,
    /// and only then read the lanes; sampling before the shard locks are
    /// held would let a worker book a score (and decrement `in_flight`)
    /// between the read and the shard freeze, counting the same query as
    /// both in-flight and scored.
    pub fn freeze(&self) -> FrozenAdmission<'_> {
        FrozenAdmission {
            queue: self,
            shared: self.shared.lock().expect("admission lock poisoned"),
        }
    }

    /// Marks one drained query as finished (scored). Workers call this
    /// while holding their own metrics shard lock, in the same critical
    /// section that records the score — keeping the in-flight counter and
    /// the scored histogram in lockstep for snapshot readers.
    pub fn mark_done(&self, lane: usize) {
        let c = &self.counters[lane.min(self.policy.lanes - 1)];
        c.in_flight.fetch_sub(1, Ordering::Relaxed);
        c.in_flight_gauge.add(-1);
    }

    /// Resolves every drained-but-unscored query in `batch` with
    /// [`Overloaded::WorkerFailed`], moving each from `in_flight` to
    /// `shed_worker_failed` under the shared admission lock — a single
    /// atomic transition from a snapshot reader's point of view, so the
    /// identity `admitted == scored + shed_deadline + shed_worker_failed +
    /// queued + in_flight` survives a worker panic exactly. Called by the
    /// worker's `catch_unwind` recovery site with whatever the batch still
    /// held when the panic unwound it.
    pub fn fail_batch(&self, batch: &mut Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let _freeze = self.shared.lock().expect("admission lock poisoned");
        for p in batch.drain(..) {
            let lane = p.lane.min(self.policy.lanes - 1);
            let c = &self.counters[lane];
            c.shed_worker_failed.fetch_add(1, Ordering::Relaxed);
            c.in_flight.fetch_sub(1, Ordering::Relaxed);
            c.in_flight_gauge.add(-1);
            p.reject(Overloaded::WorkerFailed { lane });
        }
    }

    /// True once [`AdmissionQueue::close`] has been called. The supervisor
    /// uses this to tell a crashed worker (respawn) from one that exited
    /// because the queue drained at shutdown (leave down).
    pub fn is_closed(&self) -> bool {
        self.shared.lock().expect("admission lock poisoned").closed
    }

    /// Drops every queued ticket whose deadline has passed, resolving each
    /// with [`Overloaded::DeadlineExceeded`]. Lanes are FIFO with a uniform
    /// SLO, so expired tickets are always a prefix of each lane.
    fn shed_expired(&self, q: &mut Shared, now: Instant) {
        for (lane_no, lane) in q.lanes.iter_mut().enumerate() {
            let before = lane.len();
            while lane.front().is_some_and(|p| p.deadline <= now) {
                let p = lane.pop_front().expect("checked nonempty");
                self.counters[lane_no]
                    .shed_deadline
                    .fetch_add(1, Ordering::Relaxed);
                p.reject(Overloaded::DeadlineExceeded { lane: lane_no });
            }
            if lane.len() != before {
                self.counters[lane_no].depth_gauge.set(lane.len() as i64);
            }
        }
    }

    /// Earliest instant at which the forming batch must close: per lane
    /// front (its oldest ticket), the sooner of `submitted + max_wait` and
    /// `deadline - slo_margin`, minimized across lanes.
    fn close_deadline(&self, q: &Shared) -> Instant {
        let mut at: Option<Instant> = None;
        for lane in &q.lanes {
            if let Some(p) = lane.front() {
                let by_wait = p.submitted + self.policy.batch.max_wait;
                let by_slo = p
                    .deadline
                    .checked_sub(self.policy.slo_margin)
                    .unwrap_or(p.submitted);
                let close = by_wait.min(by_slo);
                at = Some(at.map_or(close, |a| a.min(close)));
            }
        }
        at.expect("close_deadline on an empty queue")
    }

    /// Blocks for the next batch: returns as soon as `max_batch` queries
    /// are waiting, `max_wait` after the oldest arrived, or when the oldest
    /// nears its SLO deadline — whichever is earliest. Higher-priority
    /// lanes drain first (FIFO within a lane). Expired tickets are shed
    /// (never returned). Returns `None` only when the queue is closed *and*
    /// drained — workers use that as their exit signal.
    pub fn next_batch(&self) -> Option<Vec<Pending>> {
        let mut q = self.shared.lock().expect("admission lock poisoned");
        loop {
            self.shed_expired(&mut q, Instant::now());
            let total: usize = q.lanes.iter().map(VecDeque::len).sum();
            if total == 0 {
                if q.closed {
                    return None;
                }
                q = self.notify.wait(q).expect("admission lock poisoned");
                continue;
            }
            if total >= self.policy.batch.max_batch || q.closed {
                break;
            }
            let close_at = self.close_deadline(&q);
            let now = Instant::now();
            if now >= close_at {
                break;
            }
            let (guard, _) = self
                .notify
                .wait_timeout(q, close_at - now)
                .expect("admission lock poisoned");
            q = guard;
        }
        let mut batch = Vec::new();
        'drain: for (lane_no, lane) in q.lanes.iter_mut().enumerate() {
            let before = lane.len();
            while let Some(p) = lane.pop_front() {
                // still under the shared lock: queued → in_flight is one
                // atomic transition from a snapshot reader's point of view
                let c = &self.counters[lane_no];
                c.in_flight.fetch_add(1, Ordering::Relaxed);
                c.in_flight_gauge.add(1);
                batch.push(p);
                if batch.len() == self.policy.batch.max_batch {
                    if lane.len() != before {
                        c.depth_gauge.set(lane.len() as i64);
                    }
                    break 'drain;
                }
            }
            if lane.len() != before {
                self.counters[lane_no].depth_gauge.set(lane.len() as i64);
            }
        }
        Some(batch)
    }

    /// Closes the queue: wakes every waiter; `next_batch` drains what is
    /// queued and then reports `None`.
    pub fn close(&self) {
        self.shared.lock().expect("admission lock poisoned").closed = true;
        self.notify.notify_all();
    }
}

/// The admission lock, held: submits, door sheds, expiry sheds, and batch
/// drains are frozen until the guard drops. See [`AdmissionQueue::freeze`]
/// for the locking discipline that makes [`FrozenAdmission::lanes`] an
/// exact cross-shard snapshot.
pub struct FrozenAdmission<'a> {
    queue: &'a AdmissionQueue,
    shared: std::sync::MutexGuard<'a, Shared>,
}

impl FrozenAdmission<'_> {
    /// Samples the per-lane counters *now*, under the frozen admission
    /// lock. Exactness of `in_flight` additionally requires the caller to
    /// hold every worker metrics shard lock at the moment of this call.
    pub fn lanes(&self) -> Vec<LaneAdmission> {
        let mut out = vec![LaneAdmission::default(); self.queue.counters.len()];
        self.lanes_into(&mut out);
        out
    }

    /// [`FrozenAdmission::lanes`] into caller-owned storage (allocation
    /// free; `out.len()` must equal the lane count).
    pub fn lanes_into(&self, out: &mut [LaneAdmission]) {
        assert_eq!(out.len(), self.queue.counters.len(), "lane count mismatch");
        for (i, (slot, c)) in out.iter_mut().zip(self.queue.counters.iter()).enumerate() {
            *slot = LaneAdmission {
                admitted: c.admitted.load(Ordering::Relaxed),
                shed_full: c.shed_full.load(Ordering::Relaxed),
                shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
                shed_worker_failed: c.shed_worker_failed.load(Ordering::Relaxed),
                queued: self.shared.lanes[i].len() as u64,
                in_flight: c.in_flight.load(Ordering::Relaxed),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: u32) -> LinkQuery {
        LinkQuery {
            src,
            dst: 100,
            t: 1.0,
        }
    }

    fn policy(max_batch: usize, max_wait: Duration) -> AdmissionPolicy {
        AdmissionPolicy {
            batch: BatchPolicy {
                max_batch,
                max_wait,
            },
            ..AdmissionPolicy::default()
        }
    }

    #[test]
    fn full_batch_returns_without_waiting_out_the_clock() {
        let b = AdmissionQueue::new(policy(4, Duration::from_secs(60)));
        for i in 0..4 {
            b.submit(q(i), 0).unwrap();
        }
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 4);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a full batch must not linger"
        );
        assert_eq!(batch[0].query.src, 0, "FIFO order");
    }

    #[test]
    fn partial_batch_released_by_latency_bound() {
        let b = AdmissionQueue::new(policy(1000, Duration::from_millis(20)));
        b.submit(q(7), 0).unwrap();
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 1, "latency bound must release the batch");
    }

    #[test]
    fn deadline_close_preempts_max_wait() {
        // max_wait is an hour, but the single ticket's SLO budget is 90ms
        // with a 50ms margin: the batch must close ~40ms after submission.
        let b = AdmissionQueue::new(AdmissionPolicy {
            batch: BatchPolicy {
                max_batch: 1000,
                max_wait: Duration::from_secs(3600),
            },
            slo: Duration::from_millis(90),
            slo_margin: Duration::from_millis(50),
            ..AdmissionPolicy::default()
        });
        let t = b.submit(q(1), 0).unwrap();
        let start = Instant::now();
        let batch = b.next_batch().unwrap();
        let waited = start.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(
            waited < Duration::from_secs(30),
            "SLO margin must close the batch long before max_wait ({waited:?})"
        );
        assert!(
            waited >= Duration::from_millis(20),
            "the batch should linger up to deadline - margin ({waited:?})"
        );
        batch.into_iter().next().unwrap().fulfill(ScoreResult {
            prob: 0.5,
            generation: 0,
        });
        assert!(t.wait().is_ok());
    }

    #[test]
    fn queue_cap_rejects_per_lane_and_high_lane_still_admits() {
        let b = AdmissionQueue::new(AdmissionPolicy {
            lanes: 2,
            queue_cap: 2,
            ..policy(1000, Duration::from_secs(60))
        });
        // fill the low-priority lane to its cap
        b.submit(q(10), 1).unwrap();
        b.submit(q(11), 1).unwrap();
        assert_eq!(
            b.submit(q(12), 1).unwrap_err(),
            Overloaded::QueueFull { lane: 1 },
            "third low-lane submit must shed"
        );
        // the high-priority lane has its own budget
        b.submit(q(0), 0).unwrap();
        let counters = b.lane_admission();
        assert_eq!(counters[0].admitted, 1);
        assert_eq!(counters[0].shed_full, 0);
        assert_eq!(counters[1].admitted, 2);
        assert_eq!(counters[1].shed_full, 1);
        // priority order: lane 0 drains before lane 1 despite arriving last
        let batch = b.next_batch().unwrap();
        let srcs: Vec<u32> = batch.iter().map(|p| p.query.src).collect();
        assert_eq!(srcs, vec![0, 10, 11], "lane 0 first, then lane 1 FIFO");
    }

    #[test]
    fn lane_out_of_range_clamps_to_last() {
        let b = AdmissionQueue::new(AdmissionPolicy {
            lanes: 2,
            ..policy(10, Duration::from_millis(1))
        });
        b.submit(q(1), 99).unwrap();
        assert_eq!(b.lane_admission()[1].admitted, 1);
    }

    #[test]
    fn expired_tickets_are_shed_with_typed_outcome() {
        let b = AdmissionQueue::new(AdmissionPolicy {
            slo: Duration::ZERO, // every ticket is born expired
            ..policy(10, Duration::from_millis(1))
        });
        let t = b.submit(q(1), 0).unwrap();
        b.close();
        // the drain sheds the expired ticket and then reports exhaustion
        assert!(b.next_batch().is_none());
        assert_eq!(t.wait(), Err(Overloaded::DeadlineExceeded { lane: 0 }));
        assert_eq!(b.lane_admission()[0].shed_deadline, 1);
    }

    #[test]
    fn oversized_backlog_splits_into_batches() {
        let b = AdmissionQueue::new(policy(3, Duration::from_millis(1)));
        for i in 0..7 {
            b.submit(q(i), 0).unwrap();
        }
        let sizes: Vec<usize> = (0..3).map(|_| b.next_batch().unwrap().len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn tickets_deliver_across_threads() {
        let b = Arc::new(AdmissionQueue::new(AdmissionPolicy::default()));
        let worker = {
            let b = b.clone();
            std::thread::spawn(move || {
                let batch = b.next_batch().unwrap();
                for (i, p) in batch.into_iter().enumerate() {
                    p.fulfill(ScoreResult {
                        prob: 0.25 + i as f32,
                        generation: 9,
                    });
                }
            })
        };
        let t1 = b.submit(q(1), 0).unwrap();
        let t2 = b.submit(q(2), 0).unwrap();
        let r1 = t1.wait().expect("scored");
        let r2 = t2
            .wait_timeout(Duration::from_secs(10))
            .expect("fulfilled")
            .expect("scored");
        assert_eq!(r1.generation, 9);
        assert!(r2.prob > r1.prob, "FIFO fulfillment order");
        worker.join().unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let b = AdmissionQueue::new(policy(10, Duration::from_millis(1)));
        b.submit(q(1), 0).unwrap();
        b.close();
        assert_eq!(b.next_batch().unwrap().len(), 1);
        assert!(b.next_batch().is_none(), "closed + drained = exit signal");
        assert_eq!(b.backlog(), 0);
    }

    #[test]
    fn wait_timeout_expires_on_unfulfilled_ticket() {
        let b = AdmissionQueue::new(AdmissionPolicy::default());
        let t = b.submit(q(1), 0).unwrap();
        assert!(t.wait_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn wait_timeout_is_retryable_then_resolves() {
        let b = Arc::new(AdmissionQueue::new(policy(1, Duration::from_millis(1))));
        let t = b.submit(q(1), 0).unwrap();
        assert!(t.wait_timeout(Duration::from_millis(5)).is_none());
        let worker = {
            let b = b.clone();
            std::thread::spawn(move || {
                for p in b.next_batch().unwrap() {
                    p.fulfill(ScoreResult {
                        prob: 0.5,
                        generation: 1,
                    });
                }
            })
        };
        // the timed-out ticket is still live and eventually resolves
        assert_eq!(t.wait().expect("scored").generation, 1);
        worker.join().unwrap();
    }

    /// The registry gauges mirror queue depth and in-flight through the
    /// whole admit → drain → done cycle. Uses a 5-lane queue so lane 4's
    /// gauge names are not shared with the 2-lane queues other tests run
    /// concurrently against the process-global registry.
    #[test]
    fn registry_gauges_track_depth_and_in_flight() {
        let depth = taser_obs::global().gauge("taser_admission_queue_depth{lane=\"4\"}");
        let in_flight = taser_obs::global().gauge("taser_admission_in_flight{lane=\"4\"}");
        let b = AdmissionQueue::new(AdmissionPolicy {
            lanes: 5,
            ..policy(8, Duration::from_millis(1))
        });
        let tickets: Vec<_> = (0..3).map(|i| b.submit(q(i), 4).unwrap()).collect();
        assert_eq!(depth.get(), 3, "three queued after three submits");
        assert_eq!(in_flight.get(), 0);
        let batch = b.next_batch().unwrap();
        assert_eq!(depth.get(), 0, "drain empties the lane");
        assert_eq!(in_flight.get(), 3, "drained queries are in flight");
        for p in batch {
            let lane = p.lane;
            p.fulfill(ScoreResult {
                prob: 0.5,
                generation: 0,
            });
            b.mark_done(lane);
        }
        assert_eq!(in_flight.get(), 0, "mark_done returns the gauge to zero");
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn dropped_batch_resolves_waiters_as_worker_failed() {
        let b = AdmissionQueue::new(policy(4, Duration::from_millis(1)));
        let t = b.submit(q(1), 0).unwrap();
        // simulate a worker that drained the batch and then died without
        // reaching the fail_batch recovery site
        drop(b.next_batch());
        assert_eq!(t.wait(), Err(Overloaded::WorkerFailed { lane: 0 }));
    }

    #[test]
    fn fail_batch_moves_in_flight_to_shed_worker_failed() {
        let b = AdmissionQueue::new(policy(8, Duration::from_millis(1)));
        let tickets: Vec<_> = (0..3).map(|i| b.submit(q(i), 0).unwrap()).collect();
        let mut batch = b.next_batch().unwrap();
        assert_eq!(b.lane_admission()[0].in_flight, 3);
        b.fail_batch(&mut batch);
        assert!(batch.is_empty());
        let lane = b.lane_admission()[0];
        assert_eq!(lane.shed_worker_failed, 3);
        assert_eq!(lane.in_flight, 0);
        assert_eq!(
            lane.admitted,
            lane.shed_deadline + lane.shed_worker_failed + lane.queued + lane.in_flight,
            "identity holds through the failure"
        );
        for t in tickets {
            assert_eq!(t.wait(), Err(Overloaded::WorkerFailed { lane: 0 }));
        }
    }
}
