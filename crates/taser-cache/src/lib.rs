//! # taser-cache
//!
//! The dynamic GPU feature cache of TASER (§III-D, Algorithm 3) and its
//! evaluation companions:
//!
//! * [`dynamic_cache::DynamicCache`] — epoch-granularity top-k frequency
//!   cache with overlap-threshold replacement.
//! * [`oracle`] — the clairvoyant upper bound of Fig. 3b.
//! * [`store::FeatureStore`] — a two-tier (VRAM-cache / host-RAM) feature
//!   store serving gathers with per-tier byte accounting.
//! * [`transfer::TransferModel`] — modeled VRAM/PCIe transfer times, the
//!   substitution for real zero-copy hardware.

pub mod dynamic_cache;
pub mod oracle;
pub(crate) mod rng_util;
pub mod store;
pub mod transfer;

pub use dynamic_cache::{DynamicCache, EpochCacheReport};
pub use oracle::{oracle_hit_rate, oracle_hit_rates};
pub use store::{CachePolicy, FeatureStore, SliceStats};
pub use transfer::TransferModel;
