//! The two-tier feature store: host RAM features fronted by the dynamic
//! VRAM cache, with byte-level transfer accounting.

use crate::dynamic_cache::{DynamicCache, EpochCacheReport};
use crate::transfer::TransferModel;
use std::time::Duration;
use taser_graph::feats::FeatureMatrix;

/// Cache policy selector for the feature store.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CachePolicy {
    /// Every read goes over the slow tier (the paper's "Baseline" rows).
    None,
    /// Algorithm 3 with a capacity expressed as a fraction of all items and
    /// a replacement threshold ε (fraction of capacity overlap).
    Dynamic {
        /// Cached fraction of all feature rows (0.1/0.2/0.3 in Table III).
        ratio: f64,
        /// Replacement threshold ε.
        epsilon: f64,
    },
}

/// Statistics of one gather through the store.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SliceStats {
    /// Rows served from the fast (VRAM) tier.
    pub hits: usize,
    /// Rows served over the slow (PCIe) tier.
    pub misses: usize,
    /// Bytes moved from VRAM.
    pub hit_bytes: u64,
    /// Bytes moved over PCIe.
    pub miss_bytes: u64,
}

impl SliceStats {
    /// Hit rate of this gather.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Feature matrix fronted by a [`DynamicCache`], serving gathers and
/// accounting transfer bytes per tier.
pub struct FeatureStore {
    feats: FeatureMatrix,
    cache: Option<DynamicCache>,
    transfer: TransferModel,
    modeled_epoch_time: Duration,
    policy: CachePolicy,
    trace: Option<Vec<u32>>,
}

impl FeatureStore {
    /// Wraps `feats` under the given policy.
    pub fn new(feats: FeatureMatrix, policy: CachePolicy, seed: u64) -> Self {
        let cache = match policy {
            CachePolicy::None => None,
            CachePolicy::Dynamic { ratio, epsilon } => {
                let capacity = ((feats.rows() as f64) * ratio).round() as usize;
                Some(DynamicCache::new(feats.rows(), capacity, epsilon, seed))
            }
        };
        FeatureStore {
            feats,
            cache,
            transfer: TransferModel::default(),
            modeled_epoch_time: Duration::ZERO,
            policy,
            trace: None,
        }
    }

    /// Enables per-epoch access-trace recording (used by the oracle-cache
    /// comparison of Fig. 3b).
    pub fn record_trace(&mut self, enabled: bool) {
        self.trace = enabled.then(Vec::new);
    }

    /// Takes the recorded access trace since the last call (empty when
    /// recording is disabled).
    pub fn take_trace(&mut self) -> Vec<u32> {
        match &mut self.trace {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Overrides the transfer model (bench harnesses).
    pub fn with_transfer(mut self, transfer: TransferModel) -> Self {
        self.transfer = transfer;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.feats.dim()
    }

    /// Number of feature rows.
    pub fn rows(&self) -> usize {
        self.feats.rows()
    }

    /// Direct read-only access to the backing matrix.
    pub fn features(&self) -> &FeatureMatrix {
        &self.feats
    }

    /// Gathers feature rows for `ids`, recording cache accesses and tier
    /// bytes. Returns the flat `[ids.len() * dim]` buffer and the stats.
    pub fn gather(&mut self, ids: &[u32]) -> (Vec<f32>, SliceStats) {
        let row_bytes = (self.feats.dim() * std::mem::size_of::<f32>()) as u64;
        let mut stats = SliceStats::default();
        if let Some(t) = &mut self.trace {
            t.extend_from_slice(ids);
        }
        match &mut self.cache {
            None => {
                stats.misses = ids.len();
                stats.miss_bytes = row_bytes * ids.len() as u64;
            }
            Some(c) => {
                for &e in ids {
                    if c.access(e) {
                        stats.hits += 1;
                        stats.hit_bytes += row_bytes;
                    } else {
                        stats.misses += 1;
                        stats.miss_bytes += row_bytes;
                    }
                }
            }
        }
        self.modeled_epoch_time += self
            .transfer
            .modeled_time(stats.hit_bytes, stats.miss_bytes);
        (self.feats.gather(ids), stats)
    }

    /// Epoch-boundary maintenance: runs the cache replacement check and
    /// returns `(cache report, modeled feature-slicing time this epoch)`.
    pub fn end_epoch(&mut self) -> (Option<EpochCacheReport>, Duration) {
        let mut t = self.modeled_epoch_time;
        self.modeled_epoch_time = Duration::ZERO;
        let report = self.cache.as_mut().map(|c| {
            let r = c.end_epoch();
            if r.replaced {
                let bytes = (c.capacity() * self.feats.dim() * std::mem::size_of::<f32>()) as u64;
                t += self.transfer.refill_time(bytes);
            }
            r
        });
        (report, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(rows: usize, dim: usize) -> FeatureMatrix {
        FeatureMatrix::from_vec((0..rows * dim).map(|x| x as f32).collect(), dim)
    }

    #[test]
    fn gather_returns_correct_rows() {
        let mut s = FeatureStore::new(feats(10, 2), CachePolicy::None, 1);
        let (buf, stats) = s.gather(&[3, 0]);
        assert_eq!(buf, vec![6.0, 7.0, 0.0, 1.0]);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.miss_bytes, 16);
    }

    #[test]
    fn dynamic_policy_caches_hot_rows() {
        let mut s = FeatureStore::new(
            feats(100, 4),
            CachePolicy::Dynamic {
                ratio: 0.1,
                epsilon: 0.7,
            },
            2,
        );
        // epoch 1: hammer rows 0..10
        for _ in 0..30 {
            s.gather(&(0..10u32).collect::<Vec<_>>());
        }
        let (r1, t1) = s.end_epoch();
        assert!(r1.unwrap().replaced);
        assert!(t1 > Duration::ZERO);
        // epoch 2: same pattern -> all hits
        let (_, stats) = s.gather(&(0..10u32).collect::<Vec<_>>());
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.hit_rate(), 1.0);
    }

    #[test]
    fn modeled_time_resets_each_epoch() {
        let mut s = FeatureStore::new(feats(10, 4), CachePolicy::None, 1);
        s.gather(&[1, 2, 3]);
        let (_, t1) = s.end_epoch();
        assert!(t1 > Duration::ZERO);
        let (_, t2) = s.end_epoch();
        assert_eq!(t2, Duration::ZERO);
    }

    #[test]
    fn policy_none_has_no_report() {
        let mut s = FeatureStore::new(feats(10, 4), CachePolicy::None, 1);
        let (r, _) = s.end_epoch();
        assert!(r.is_none());
    }

    #[test]
    fn trace_recording_roundtrip() {
        let mut s = FeatureStore::new(feats(10, 2), CachePolicy::None, 1);
        assert!(s.take_trace().is_empty(), "no trace before enabling");
        s.record_trace(true);
        s.gather(&[3, 0, 3]);
        s.gather(&[7]);
        assert_eq!(s.take_trace(), vec![3, 0, 3, 7]);
        assert!(s.take_trace().is_empty(), "take drains the trace");
    }

    #[test]
    fn cached_gather_is_bitwise_identical() {
        let f = feats(50, 3);
        let mut a = FeatureStore::new(f.clone(), CachePolicy::None, 1);
        let mut b = FeatureStore::new(
            f,
            CachePolicy::Dynamic {
                ratio: 0.2,
                epsilon: 0.7,
            },
            1,
        );
        let ids = vec![4u32, 9, 4, 31];
        assert_eq!(
            a.gather(&ids).0,
            b.gather(&ids).0,
            "cache must not change data"
        );
    }
}
