//! The Oracle caching strategy (Fig. 3b's upper bound).
//!
//! The oracle is told each epoch's access trace in advance and caches the
//! top-k most frequently accessed items for that exact epoch. Its hit rate
//! is the best any epoch-granularity, k-item cache can achieve.

/// Hit rate of an oracle cache of `capacity` items over a known access trace.
pub fn oracle_hit_rate(accesses: &[u32], num_items: usize, capacity: usize) -> f64 {
    if accesses.is_empty() || capacity == 0 {
        return 0.0;
    }
    let mut freq = vec![0u64; num_items];
    for &e in accesses {
        freq[e as usize] += 1;
    }
    let k = capacity.min(num_items);
    let mut ids: Vec<u32> = (0..num_items as u32).collect();
    if k < ids.len() {
        ids.select_nth_unstable_by(k - 1, |&a, &b| {
            freq[b as usize].cmp(&freq[a as usize]).then(a.cmp(&b))
        });
        ids.truncate(k);
    }
    let covered: u64 = ids.iter().map(|&e| freq[e as usize]).sum();
    covered as f64 / accesses.len() as f64
}

/// Epoch-by-epoch oracle hit rates for a sequence of traces.
pub fn oracle_hit_rates(traces: &[Vec<u32>], num_items: usize, capacity: usize) -> Vec<f64> {
    traces
        .iter()
        .map(|t| oracle_hit_rate(t, num_items, capacity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_capacity_is_perfect() {
        let trace = vec![1, 2, 3, 1, 2, 3];
        assert_eq!(oracle_hit_rate(&trace, 10, 10), 1.0);
    }

    #[test]
    fn covers_hottest_items() {
        // item 0: 8 accesses, item 1: 2, capacity 1 -> 0.8
        let mut trace = vec![0u32; 8];
        trace.extend_from_slice(&[1, 1]);
        assert!((oracle_hit_rate(&trace, 5, 1) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_or_capacity_is_zero() {
        assert_eq!(oracle_hit_rate(&[], 5, 2), 0.0);
        assert_eq!(oracle_hit_rate(&[1, 2], 5, 0), 0.0);
    }

    #[test]
    fn per_epoch_rates() {
        let traces = vec![vec![0, 0, 1], vec![2, 2, 2]];
        let rates = oracle_hit_rates(&traces, 4, 1);
        assert!((rates[0] - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(rates[1], 1.0);
    }

    #[test]
    fn oracle_at_least_as_good_as_any_fixed_set() {
        // compare against a random fixed cache on a skewed trace
        let mut trace = Vec::new();
        for e in 0..50u32 {
            for _ in 0..(50 - e) {
                trace.push(e);
            }
        }
        let oracle = oracle_hit_rate(&trace, 50, 10);
        // fixed set {40..50} (the coldest) must be worse
        let cold: f64 = trace.iter().filter(|&&e| e >= 40).count() as f64 / trace.len() as f64;
        assert!(oracle > cold);
        // and the oracle picks exactly the 10 hottest: items 0..10
        let hot: f64 = trace.iter().filter(|&&e| e < 10).count() as f64 / trace.len() as f64;
        assert!((oracle - hot).abs() < 1e-9);
    }
}
