//! Byte-accounted transfer cost model for the two feature tiers.
//!
//! The paper serves cache hits from VRAM and misses through zero-copy PCIe
//! reads (unified virtual addressing). With no GPU present, we account bytes
//! moved through each tier and convert them to a modeled transfer time with
//! configurable bandwidths, reported next to measured gather time.

use std::time::Duration;

/// Bandwidths of the simulated memory tiers.
#[derive(Clone, Copy, Debug)]
pub struct TransferModel {
    /// VRAM read bandwidth in GB/s (cache hits).
    pub vram_gbps: f64,
    /// Effective PCIe zero-copy bandwidth in GB/s (cache misses).
    pub pcie_gbps: f64,
    /// Fixed per-batch launch/setup latency in microseconds.
    pub per_batch_us: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        // RTX 6000 Ada-class VRAM vs PCIe 4.0 x16 effective zero-copy rate.
        TransferModel {
            vram_gbps: 960.0,
            pcie_gbps: 22.0,
            per_batch_us: 10.0,
        }
    }
}

impl TransferModel {
    /// Modeled time to serve `hit_bytes` from VRAM and `miss_bytes` over PCIe.
    pub fn modeled_time(&self, hit_bytes: u64, miss_bytes: u64) -> Duration {
        let secs = hit_bytes as f64 / (self.vram_gbps * 1e9)
            + miss_bytes as f64 / (self.pcie_gbps * 1e9)
            + self.per_batch_us * 1e-6;
        Duration::from_secs_f64(secs)
    }

    /// Modeled time to (re)fill the cache with `bytes` (host-to-device copy
    /// at PCIe rate) — the replacement cost in Algorithm 3.
    pub fn refill_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / (self.pcie_gbps * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_cost_more_than_hits() {
        let m = TransferModel::default();
        let hit = m.modeled_time(1 << 20, 0);
        let miss = m.modeled_time(0, 1 << 20);
        assert!(miss > hit);
    }

    #[test]
    fn monotone_in_bytes() {
        let m = TransferModel::default();
        assert!(m.modeled_time(0, 2 << 20) > m.modeled_time(0, 1 << 20));
        assert!(m.refill_time(2 << 20) > m.refill_time(1 << 20));
    }

    #[test]
    fn per_batch_floor() {
        let m = TransferModel::default();
        assert!(m.modeled_time(0, 0) >= Duration::from_micros(10));
    }
}
