//! The dynamic GPU feature cache of Algorithm 3.
//!
//! Frequencies `Q[e]` accumulate as edges are read. At each epoch boundary,
//! if the overlap between the currently cached set and the top-k most
//! frequently accessed edges falls below a threshold ε, the cache content is
//! swapped for the top-k — an O(|E|) policy, far cheaper than per-access
//! probability maintenance, and near-oracle once the adaptive samplers
//! stabilize (Fig. 3b).

use crate::rng_util::mix;

/// Outcome of one epoch-boundary maintenance pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochCacheReport {
    /// Hit rate observed during the epoch.
    pub hit_rate: f64,
    /// Accesses observed during the epoch.
    pub accesses: u64,
    /// Overlap fraction between cached set and observed top-k.
    pub overlap: f64,
    /// Whether the cache content was replaced.
    pub replaced: bool,
}

/// Epoch-granularity top-k frequency cache (Algorithm 3).
///
/// All tracking (frequencies, cached flags, top-k selection) happens at
/// *cache line* granularity: `line_size` consecutive item ids share one
/// line. The paper's default is line size 1; §III-D observes that growing
/// the line to 512 (to shrink policy state) costs >20% hit rate — the
/// `ablation_cache_line` bench reproduces that trade-off.
#[derive(Clone, Debug)]
pub struct DynamicCache {
    cached: Vec<bool>,
    cached_list: Vec<u32>,
    freq: Vec<u64>,
    /// Capacity in *items* (line count is derived).
    capacity: usize,
    line_size: usize,
    lines_capacity: usize,
    /// Replacement threshold ε as a fraction of capacity.
    epsilon: f64,
    /// Per-epoch exponential decay of `Q` (1.0 = the paper's cumulative
    /// counts; smaller values adapt faster — see the ablation bench).
    decay: f64,
    hits: u64,
    misses: u64,
    replacements: u64,
}

impl DynamicCache {
    /// Creates a cache over `num_items` features holding at most `capacity`
    /// of them, randomly initialized (Algorithm 3, line 2). Line size 1.
    pub fn new(num_items: usize, capacity: usize, epsilon: f64, seed: u64) -> Self {
        Self::with_line_size(num_items, capacity, 1, epsilon, seed)
    }

    /// Creates a cache with an explicit line size: item `e` belongs to line
    /// `e / line_size`, and the cache holds `capacity / line_size` lines
    /// (fixed byte budget).
    pub fn with_line_size(
        num_items: usize,
        capacity: usize,
        line_size: usize,
        epsilon: f64,
        seed: u64,
    ) -> Self {
        assert!(line_size >= 1, "line size must be positive");
        let capacity = capacity.min(num_items);
        let num_lines = num_items.div_ceil(line_size);
        let lines_capacity = (capacity / line_size).min(num_lines);
        let mut cached = vec![false; num_lines];
        let mut cached_list = Vec::with_capacity(lines_capacity);
        // Random distinct initial content via a seeded partial shuffle.
        let mut ids: Vec<u32> = (0..num_lines as u32).collect();
        for j in 0..lines_capacity {
            let r = j + (mix(seed.wrapping_add(j as u64)) as usize) % (num_lines - j);
            ids.swap(j, r);
            cached[ids[j] as usize] = true;
            cached_list.push(ids[j]);
        }
        DynamicCache {
            cached,
            cached_list,
            freq: vec![0; num_lines],
            capacity,
            line_size,
            lines_capacity,
            epsilon,
            decay: 1.0,
            hits: 0,
            misses: 0,
            replacements: 0,
        }
    }

    /// Sets the per-epoch frequency decay (1.0 = paper behaviour).
    pub fn with_decay(mut self, decay: f64) -> Self {
        assert!((0.0..=1.0).contains(&decay));
        self.decay = decay;
        self
    }

    /// Cache capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache line size in items.
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Number of items currently cached (cached lines × line size).
    pub fn len(&self) -> usize {
        self.cached_list.len() * self.line_size
    }

    /// True when nothing is cached (capacity below one line).
    pub fn is_empty(&self) -> bool {
        self.cached_list.is_empty()
    }

    /// Whether item `e` is currently cached (no access recorded).
    pub fn contains(&self, e: u32) -> bool {
        self.cached[e as usize / self.line_size]
    }

    /// Records a read of item `e`: bumps `Q` for its line and returns
    /// whether it was a cache hit (Algorithm 3, lines 4-7).
    #[inline]
    pub fn access(&mut self, e: u32) -> bool {
        let line = e as usize / self.line_size;
        self.freq[line] += 1;
        if self.cached[line] {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records a batch of reads, returning the number of hits.
    pub fn access_batch(&mut self, eids: &[u32]) -> usize {
        eids.iter().filter(|&&e| self.access(e)).count()
    }

    /// Lifetime totals `(hits, misses, replacements)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.replacements)
    }

    /// The current top-k lines by accumulated frequency (ties by id for
    /// determinism).
    fn topk(&self) -> Vec<u32> {
        let k = self.lines_capacity;
        if k == 0 {
            return Vec::new();
        }
        let mut ids: Vec<u32> = (0..self.freq.len() as u32).collect();
        if k < ids.len() {
            ids.select_nth_unstable_by(k - 1, |&a, &b| {
                self.freq[b as usize]
                    .cmp(&self.freq[a as usize])
                    .then(a.cmp(&b))
            });
            ids.truncate(k);
        }
        ids
    }

    /// Epoch-boundary maintenance (Algorithm 3, lines 8-10): replace the
    /// cache with the frequency top-k when overlap drops below ε·k.
    pub fn end_epoch(&mut self) -> EpochCacheReport {
        let (epoch_hits, epoch_misses) = (self.hits, self.misses);
        let accesses = self.hits + self.misses;
        let hit_rate = if accesses == 0 {
            0.0
        } else {
            self.hits as f64 / accesses as f64
        };
        let top = self.topk();
        let overlap_count = top.iter().filter(|&&e| self.cached[e as usize]).count();
        let overlap = if self.lines_capacity == 0 {
            1.0
        } else {
            overlap_count as f64 / self.lines_capacity as f64
        };
        let replaced = overlap < self.epsilon && self.lines_capacity > 0;
        if replaced {
            for &e in &self.cached_list {
                self.cached[e as usize] = false;
            }
            for &e in &top {
                self.cached[e as usize] = true;
            }
            self.cached_list = top;
            self.replacements += 1;
        }
        // epoch counters reset; frequencies decay (1.0 keeps the paper's
        // cumulative behaviour)
        self.hits = 0;
        self.misses = 0;
        if self.decay < 1.0 {
            for f in &mut self.freq {
                *f = (*f as f64 * self.decay) as u64;
            }
        }
        // Epoch boundaries are rare (one per `cache_epoch_requests`
        // accesses), so registry publication lives here and the per-access
        // hot path above stays untouched — no atomics, no lookups.
        let reg = taser_obs::global();
        reg.counter("taser_cache_epoch_hits_total").add(epoch_hits);
        reg.counter("taser_cache_epoch_misses_total")
            .add(epoch_misses);
        reg.counter("taser_cache_epochs_total").inc();
        if replaced {
            reg.counter("taser_cache_replacements_total").inc();
        }
        EpochCacheReport {
            hit_rate,
            accesses,
            overlap,
            replaced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_content_is_distinct_and_at_capacity() {
        let c = DynamicCache::new(100, 10, 0.7, 1);
        assert_eq!(c.len(), 10);
        let cached: Vec<u32> = (0..100).filter(|&e| c.contains(e)).collect();
        assert_eq!(cached.len(), 10);
    }

    #[test]
    fn capacity_clamped_to_items() {
        let c = DynamicCache::new(5, 50, 0.7, 1);
        assert_eq!(c.capacity(), 5);
    }

    #[test]
    fn end_epoch_publishes_to_global_registry() {
        let reg = taser_obs::global();
        let epochs_before = reg.counter("taser_cache_epochs_total").get();
        let hits_before = reg.counter("taser_cache_epoch_hits_total").get();
        let mut c = DynamicCache::new(10, 10, 0.7, 1); // everything cached
        c.access(3);
        c.access(4);
        c.end_epoch();
        // >= rather than ==: sibling tests in this binary also end epochs
        // against the same process-wide registry
        assert!(reg.counter("taser_cache_epochs_total").get() > epochs_before);
        assert!(reg.counter("taser_cache_epoch_hits_total").get() >= hits_before + 2);
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut c = DynamicCache::new(10, 10, 0.7, 1); // everything cached
        assert!(c.access(3));
        let r = c.end_epoch();
        assert_eq!(r.hit_rate, 1.0);
        assert_eq!(r.accesses, 1);
    }

    #[test]
    fn hot_set_gets_cached_after_one_epoch() {
        let mut c = DynamicCache::new(1000, 10, 0.7, 2);
        // hot items 0..10 accessed heavily
        for _ in 0..50 {
            for e in 0..10u32 {
                c.access(e);
            }
        }
        let r1 = c.end_epoch();
        assert!(r1.replaced, "cache should adopt the hot set");
        for e in 0..10u32 {
            assert!(c.contains(e), "hot item {e} not cached");
        }
        // second epoch with same pattern: all hits, no replacement
        for _ in 0..50 {
            for e in 0..10u32 {
                c.access(e);
            }
        }
        let r2 = c.end_epoch();
        assert_eq!(r2.hit_rate, 1.0);
        assert!(!r2.replaced, "stable pattern must not churn the cache");
    }

    #[test]
    fn epsilon_zero_never_replaces() {
        let mut c = DynamicCache::new(100, 5, 0.0, 3);
        for e in 50..100u32 {
            c.access(e);
        }
        let r = c.end_epoch();
        assert!(!r.replaced);
    }

    #[test]
    fn shifted_pattern_triggers_replacement() {
        let mut c = DynamicCache::new(500, 20, 0.7, 4).with_decay(0.0);
        for _ in 0..20 {
            for e in 0..20u32 {
                c.access(e);
            }
        }
        c.end_epoch();
        // pattern shifts entirely
        for _ in 0..20 {
            for e in 100..120u32 {
                c.access(e);
            }
        }
        let r = c.end_epoch();
        assert!(r.replaced);
        assert!(c.contains(110));
        assert!(!c.contains(5));
    }

    #[test]
    fn cumulative_freq_resists_one_off_noise() {
        // with decay=1.0 (paper), one noisy epoch can't evict a long-hot set
        let mut c = DynamicCache::new(200, 10, 0.7, 5);
        for _ in 0..100 {
            for e in 0..10u32 {
                c.access(e);
            }
        }
        c.end_epoch();
        // brief noise burst, much smaller than accumulated history
        for e in 100..110u32 {
            c.access(e);
        }
        let r = c.end_epoch();
        assert!(!r.replaced, "one-off noise must not evict the hot set");
        assert!(c.contains(3));
    }

    #[test]
    fn overlap_exactly_at_epsilon_does_not_replace() {
        // Replacement fires on overlap *strictly below* ε·k (Algorithm 3
        // line 9). Engineer overlap == ε exactly and probe both sides.
        let run = |epsilon: f64| -> (f64, bool) {
            let mut c = DynamicCache::new(100, 4, epsilon, 11).with_decay(0.0);
            // epoch 1: adopt {0,1,2,3} (decay 0 wipes history afterwards)
            for _ in 0..10 {
                for e in 0..4u32 {
                    c.access(e);
                }
            }
            c.end_epoch();
            for e in 0..4u32 {
                assert!(c.contains(e), "hot item {e} not adopted");
            }
            // epoch 2: half the cached set stays hot, half the heat moves
            // away -> top-4 = {0,1,50,51}, overlap = 2/4 = 0.5
            for _ in 0..10 {
                for e in [0u32, 1, 50, 51] {
                    c.access(e);
                }
            }
            let r = c.end_epoch();
            (r.overlap, r.replaced)
        };
        let (overlap, replaced) = run(0.5);
        assert_eq!(overlap, 0.5);
        assert!(!replaced, "overlap == ε must keep the cache");
        let (overlap, replaced) = run(0.5 + 1e-9);
        assert_eq!(overlap, 0.5);
        assert!(replaced, "overlap < ε must swap the cache");
    }

    #[test]
    fn request_count_epochs_with_decay_adapt_faster() {
        // Serving drives end_epoch() by request count rather than training
        // epochs: maintenance runs every `epoch_requests` accesses. Under a
        // hot-set shift, decayed frequencies (< 1.0) let the cache abandon
        // stale history sooner than the paper's cumulative counts.
        let epochs_to_adopt = |decay: f64| -> usize {
            let mut c = DynamicCache::new(400, 10, 0.7, 21).with_decay(decay);
            let epoch_requests = 50usize;
            // long warm phase on A = 0..10 (5 request-count epochs)
            for _ in 0..5 {
                for _ in 0..epoch_requests / 10 {
                    for e in 0..10u32 {
                        c.access(e);
                    }
                }
                c.end_epoch();
            }
            for e in 0..10u32 {
                assert!(c.contains(e), "warm phase must cache A");
            }
            // shift to B = 100..110; count maintenance passes until adopted
            for epoch in 1..=40 {
                for _ in 0..epoch_requests / 10 {
                    for e in 100..110u32 {
                        c.access(e);
                    }
                }
                c.end_epoch();
                if (100..110u32).all(|e| c.contains(e)) {
                    return epoch;
                }
            }
            panic!("cache never adopted the shifted hot set (decay {decay})");
        };
        let decayed = epochs_to_adopt(0.3);
        let cumulative = epochs_to_adopt(1.0);
        assert!(
            decayed < cumulative,
            "decay must adapt faster: {decayed} vs {cumulative} epochs"
        );
    }

    #[test]
    fn decay_rounds_small_frequencies_to_zero() {
        // decay < 1.0 truncates: a line touched once is forgotten entirely
        // after one maintenance pass with decay 0.5 (freq 1 -> 0), so a
        // single later access elsewhere can outrank it.
        let mut c = DynamicCache::new(50, 2, 0.9, 3).with_decay(0.5);
        c.access(10);
        c.access(11);
        c.end_epoch(); // freqs of 10/11 decay from 1 to 0
        for e in [20u32, 21] {
            c.access(e);
            c.access(e);
        }
        let r = c.end_epoch();
        assert!(r.replaced, "forgotten lines must lose to fresh heat");
        assert!(c.contains(20) && c.contains(21));
        assert!(!c.contains(10) && !c.contains(11));
    }

    #[test]
    fn totals_accumulate() {
        let mut c = DynamicCache::new(10, 10, 0.7, 1);
        c.access_batch(&[1, 2, 3]);
        let (h, m, _) = c.totals();
        assert_eq!(h + m, 3);
    }

    #[test]
    fn zero_capacity_is_all_miss() {
        let mut c = DynamicCache::new(10, 0, 0.7, 1);
        assert!(!c.access(1));
        let r = c.end_epoch();
        assert_eq!(r.hit_rate, 0.0);
        assert!(!r.replaced);
        assert!(c.is_empty());
    }

    #[test]
    fn deterministic_by_seed() {
        let a = DynamicCache::new(100, 10, 0.7, 9);
        let b = DynamicCache::new(100, 10, 0.7, 9);
        let la: Vec<u32> = (0..100).filter(|&e| a.contains(e)).collect();
        let lb: Vec<u32> = (0..100).filter(|&e| b.contains(e)).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn line_size_groups_items() {
        let mut c = DynamicCache::with_line_size(64, 16, 8, 0.7, 1);
        assert_eq!(c.line_size(), 8);
        assert_eq!(c.len(), 16, "2 lines × 8 items");
        // accessing any item in a line heats the whole line
        for _ in 0..50 {
            c.access(17); // line 2
        }
        let r = c.end_epoch();
        assert!(r.replaced || c.contains(17));
        // after adoption, all items in line 2 (16..24) are hits
        for e in 16..24u32 {
            assert!(c.contains(e), "line member {e} not cached");
        }
        // a cold line is not covered by line 2's heat
        assert!(!c.contains(40), "cold line unexpectedly cached");
    }

    #[test]
    fn coarse_lines_lose_hit_rate_on_scattered_access() {
        // Scattered hot items (one per 64-item stripe): fine-grained cache
        // covers them all; 64-item lines waste capacity on cold neighbors.
        let num_items = 4096;
        let capacity = 64;
        let hot: Vec<u32> = (0..64u32).map(|i| i * 64).collect();
        let run = |line: usize| -> f64 {
            let mut c = DynamicCache::with_line_size(num_items, capacity, line, 0.7, 3);
            // two epochs: adopt, then measure
            for _ in 0..4 {
                for &e in &hot {
                    c.access(e);
                }
            }
            c.end_epoch();
            for &e in &hot {
                c.access(e);
            }
            c.end_epoch().hit_rate
        };
        let fine = run(1);
        let coarse = run(64);
        assert!(
            fine > 0.9,
            "fine-grained cache should cover hot set: {fine}"
        );
        assert!(
            fine > coarse + 0.2,
            "paper's >20% drop not reproduced: fine {fine} vs coarse {coarse}"
        );
    }
}
