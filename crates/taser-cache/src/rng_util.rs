//! Small deterministic mixing helper (SplitMix64 finalizer).

/// Mixes a 64-bit value into a well-distributed hash.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    #[test]
    fn mix_spreads_bits() {
        let a = super::mix(1);
        let b = super::mix(2);
        assert_ne!(a, b);
        assert!(
            (a ^ b).count_ones() > 8,
            "adjacent inputs should differ widely"
        );
    }
}
