//! Co-training the adaptive sampler with the TGNN (§III-B, Eq. 22-26).
//!
//! The sampling operation is non-differentiable, so the sampler's parameters
//! are updated by REINFORCE: `∇θ E_q[f] ≈ Σ_j f(u_j) ∇θ log q(u_j)`
//! (Eq. 23). The per-neighbor coefficient `f(u_j)` is derived from the
//! aggregator's internals and the gradient that reached the aggregator
//! output during the model backward pass:
//!
//! * **TGAT** (Eq. 25) — attention weight × (value + β·output) · output-grad,
//!   scaled by `1/(λα)` where `λ` estimates `E_q[e^a]`.
//! * **GraphMixer** (Eq. 26) — post-mixer token row · pooled-output grad / n.
//!
//! [`CoTrainStrategy::InfluenceGate`] is a principled aggregator-agnostic
//! alternative (not in the paper): the coefficient is the directional
//! derivative of the loss w.r.t. an implicit per-neighbor gate
//! `s_j = 1` multiplying neighbor `j`'s contribution, i.e.
//! `f(u_j) = ⟨∂L/∂V_j, V_j⟩`. It needs no per-aggregator derivation and is
//! exercised by the ablation bench.

use taser_models::Feedback;
use taser_tensor::Graph;

/// How the REINFORCE coefficients are computed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoTrainStrategy {
    /// The paper's closed forms (Eq. 25 / Eq. 26) with variance-control
    /// hyperparameters `α` and `β` (paper defaults: α = 2, β = 1).
    ClosedForm {
        /// Gradient variance control.
        alpha: f32,
        /// Root-vs-neighbor importance ratio.
        beta: f32,
    },
    /// Aggregator-agnostic gate-gradient coefficients.
    InfluenceGate,
}

impl Default for CoTrainStrategy {
    fn default() -> Self {
        CoTrainStrategy::ClosedForm {
            alpha: 2.0,
            beta: 1.0,
        }
    }
}

/// Magnitude clamp applied to coefficients — REINFORCE estimates are
/// heavy-tailed and a single outlier batch shouldn't blow up the policy.
const COEFF_CLAMP: f32 = 10.0;

/// Computes the per-(root, slot) coefficient vector `[R*n]` from an
/// aggregator's feedback after `g.backward(...)` has run on the model tape.
/// Returns zeros when no gradient reached the aggregator (e.g. inference).
pub fn coefficients(g: &Graph, fb: &Feedback, strategy: CoTrainStrategy) -> Vec<f32> {
    match fb {
        Feedback::Tgat {
            scores,
            attn,
            v,
            attn_out,
            heads,
            n,
        } => {
            let h = *heads;
            let n = *n;
            let r = g.data(*attn_out).rows();
            let d = g.data(*attn_out).last_dim();
            let dh = d / h;
            let Some(gout) = g.grad(*attn_out) else {
                return vec![0.0; r * n];
            };
            let attn_d = g.data(*attn).data();
            let scores_d = g.data(*scores).data();
            let v_d = g.data(*v).data();
            let out_d = g.data(*attn_out).data();
            let mut coeffs = vec![0.0f32; r * n];
            match strategy {
                CoTrainStrategy::ClosedForm { alpha, beta } => {
                    for i in 0..r {
                        for hi in 0..h {
                            let blk = i * h + hi; // [R*h, 1, n] block
                                                  // λ = E_q[e^a], stabilized by the row max; the
                                                  // shared shift is absorbed into the scale.
                            let row = &scores_d[blk * n..(blk + 1) * n];
                            let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
                            let mut lambda = 0.0f32;
                            let mut valid = 0usize;
                            for &sc in row {
                                if sc > -1e8 {
                                    lambda += (sc - maxv).exp();
                                    valid += 1;
                                }
                            }
                            if valid == 0 {
                                continue;
                            }
                            lambda /= valid as f32;
                            let gh = &gout.data()[i * d + hi * dh..i * d + (hi + 1) * dh];
                            let oh = &out_d[i * d + hi * dh..i * d + (hi + 1) * dh];
                            let root_term: f32 =
                                beta * gh.iter().zip(oh.iter()).map(|(a, b)| a * b).sum::<f32>();
                            for j in 0..n {
                                if row[j] <= -1e8 {
                                    continue;
                                }
                                let a_hat = attn_d[blk * n + j];
                                let vj = &v_d[(blk * n + j) * dh..(blk * n + j + 1) * dh];
                                let vg: f32 = vj.iter().zip(gh.iter()).map(|(a, b)| a * b).sum();
                                coeffs[i * n + j] += a_hat * (vg + root_term) / (lambda * alpha);
                            }
                        }
                    }
                }
                CoTrainStrategy::InfluenceGate => {
                    let Some(gv) = g.grad(*v) else {
                        return vec![0.0; r * n];
                    };
                    for i in 0..r {
                        for hi in 0..h {
                            let blk = i * h + hi;
                            for j in 0..n {
                                let base = (blk * n + j) * dh;
                                let dot: f32 = v_d[base..base + dh]
                                    .iter()
                                    .zip(gv.data()[base..base + dh].iter())
                                    .map(|(a, b)| a * b)
                                    .sum();
                                coeffs[i * n + j] += dot;
                            }
                        }
                    }
                }
            }
            clamp(coeffs)
        }
        Feedback::Mixer { mixed, pooled, n } => {
            let n = *n;
            let shp = g.shape(*mixed).to_vec();
            let (r, d) = (shp[0], shp[2]);
            let mixed_d = g.data(*mixed).data();
            let mut coeffs = vec![0.0f32; r * n];
            match strategy {
                CoTrainStrategy::ClosedForm { alpha, .. } => {
                    let Some(gp) = g.grad(*pooled) else {
                        return coeffs;
                    };
                    for i in 0..r {
                        let gi = &gp.data()[i * d..(i + 1) * d];
                        for j in 0..n {
                            let row = &mixed_d[(i * n + j) * d..(i * n + j + 1) * d];
                            let dot: f32 = row.iter().zip(gi.iter()).map(|(a, b)| a * b).sum();
                            coeffs[i * n + j] = dot / (n as f32 * alpha.max(1e-6));
                        }
                    }
                }
                CoTrainStrategy::InfluenceGate => {
                    let Some(gm) = g.grad(*mixed) else {
                        return coeffs;
                    };
                    for i in 0..r {
                        for j in 0..n {
                            let base = (i * n + j) * d;
                            let dot: f32 = mixed_d[base..base + d]
                                .iter()
                                .zip(gm.data()[base..base + d].iter())
                                .map(|(a, b)| a * b)
                                .sum();
                            coeffs[i * n + j] = dot;
                        }
                    }
                }
            }
            clamp(coeffs)
        }
    }
}

fn clamp(mut c: Vec<f32>) -> Vec<f32> {
    for v in &mut c {
        if !v.is_finite() {
            *v = 0.0;
        }
        *v = v.clamp(-COEFF_CLAMP, COEFF_CLAMP);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use taser_models::batch::LayerBatch;
    use taser_models::graphmixer::{MixerAggregator, MixerConfig};
    use taser_models::tgat::{TgatConfig, TgatLayer};
    use taser_models::Aggregator;
    use taser_tensor::{init, ParamStore};

    fn tgat_run(strategy: CoTrainStrategy) -> Vec<f32> {
        let mut store = ParamStore::new();
        let cfg = TgatConfig {
            in_dim: 5,
            edge_dim: 3,
            time_dim: 4,
            out_dim: 8,
            heads: 2,
            dropout: 0.0,
        };
        let layer = TgatLayer::new(&mut store, "t", cfg, 3);
        let mut g = Graph::new();
        let b = LayerBatch::from_tensors(
            &mut g,
            2,
            4,
            init::uniform(&[2, 5], -1.0, 1.0, 1),
            init::uniform(&[8, 5], -1.0, 1.0, 2),
            Some(init::uniform(&[8, 3], -1.0, 1.0, 3)),
            (0..8).map(|i| i as f32).collect(),
            vec![true; 8],
        );
        let out = layer.forward(&mut g, &store, &b, false, 1);
        let sq = g.square(out.h);
        let loss = g.sum_all(sq);
        g.backward(loss);
        coefficients(&g, &out.feedback, strategy)
    }

    #[test]
    fn tgat_closed_form_produces_nonzero_coeffs() {
        let c = tgat_run(CoTrainStrategy::default());
        assert_eq!(c.len(), 8);
        assert!(c.iter().any(|&x| x != 0.0), "all coefficients zero");
        assert!(c.iter().all(|x| x.is_finite()));
        assert!(c.iter().all(|x| x.abs() <= COEFF_CLAMP));
    }

    #[test]
    fn tgat_influence_gate_produces_nonzero_coeffs() {
        let c = tgat_run(CoTrainStrategy::InfluenceGate);
        assert!(c.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn alpha_scales_closed_form() {
        let a1 = tgat_run(CoTrainStrategy::ClosedForm {
            alpha: 1.0,
            beta: 1.0,
        });
        let a2 = tgat_run(CoTrainStrategy::ClosedForm {
            alpha: 2.0,
            beta: 1.0,
        });
        // doubling α halves the coefficients (up to the clamp)
        for (x, y) in a1.iter().zip(a2.iter()) {
            if x.abs() < COEFF_CLAMP * 0.99 {
                assert!((x / 2.0 - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    fn mixer_run(strategy: CoTrainStrategy) -> Vec<f32> {
        let mut store = ParamStore::new();
        let cfg = MixerConfig {
            in_dim: 5,
            edge_dim: 3,
            time_dim: 4,
            out_dim: 8,
            tokens: 4,
            dropout: 0.0,
        };
        let agg = MixerAggregator::new(&mut store, "m", cfg, 3);
        let mut g = Graph::new();
        let b = LayerBatch::from_tensors(
            &mut g,
            2,
            4,
            init::uniform(&[2, 5], -1.0, 1.0, 1),
            init::uniform(&[8, 5], -1.0, 1.0, 2),
            Some(init::uniform(&[8, 3], -1.0, 1.0, 3)),
            (0..8).map(|i| i as f32).collect(),
            vec![true; 8],
        );
        let out = agg.forward(&mut g, &store, &b, false, 1);
        let sq = g.square(out.h);
        let loss = g.sum_all(sq);
        g.backward(loss);
        coefficients(&g, &out.feedback, strategy)
    }

    #[test]
    fn mixer_both_strategies_nonzero() {
        for s in [CoTrainStrategy::default(), CoTrainStrategy::InfluenceGate] {
            let c = mixer_run(s);
            assert_eq!(c.len(), 8);
            assert!(c.iter().any(|&x| x != 0.0), "{s:?} all zero");
            assert!(c.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn no_backward_gives_zeros() {
        let mut store = ParamStore::new();
        let cfg = MixerConfig {
            in_dim: 5,
            edge_dim: 3,
            time_dim: 4,
            out_dim: 8,
            tokens: 4,
            dropout: 0.0,
        };
        let agg = MixerAggregator::new(&mut store, "m", cfg, 3);
        let mut g = Graph::new();
        let b = LayerBatch::from_tensors(
            &mut g,
            1,
            4,
            init::uniform(&[1, 5], -1.0, 1.0, 1),
            init::uniform(&[4, 5], -1.0, 1.0, 2),
            Some(init::uniform(&[4, 3], -1.0, 1.0, 3)),
            vec![0.0; 4],
            vec![true; 4],
        );
        let out = agg.forward(&mut g, &store, &b, false, 1);
        // no backward call
        let c = coefficients(&g, &out.feedback, CoTrainStrategy::default());
        assert!(c.iter().all(|&x| x == 0.0));
    }
}
