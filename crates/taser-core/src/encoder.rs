//! The neighbor encoder of TASER's adaptive sampler (§III-B, Eq. 12-15, 21).
//!
//! For each candidate temporal neighbor `(u, t_k)` of a root `(v, t_0)` it
//! concatenates:
//!
//! * `TE(Δt)` — GraphMixer's fixed time encoding of `t_0 - t_k` (Eq. 8),
//! * `FE(freq(u))` — sinusoidal encoding of how often `u` reappears inside
//!   the candidate neighborhood (Eq. 12) — flags redundant neighbors,
//! * `IE(u_j)` — identity encoding: the 0/1 pattern of which other slots
//!   hold the same node (Eq. 13) — distinguishes equal-frequency nodes,
//! * `GeLU(W_n x_u)` and `GeLU(W_e x_vut)` — projected node/edge features
//!   (Eq. 14).
//!
//! The root's own embedding (Eq. 21) is `{h(v) || TE(0) || FE(1)}` with the
//! edge and identity blocks zero-filled so root and neighbor embeddings
//! share one dimensionality (required by the GAT/GATv2/transformer heads).

use taser_graph::feats::FeatureMatrix;
use taser_models::time_encoding::FixedTimeEncoding;
use taser_sample::{SampledNeighbors, PAD};
use taser_tensor::nn::Linear;
use taser_tensor::{Graph, ParamStore, Tensor, VarId};

/// Dimensions of the encoder blocks. The paper sets
/// `d_feat = d_time = d_freq` across all datasets.
#[derive(Clone, Copy, Debug)]
pub struct EncoderConfig {
    /// Projected feature dimension `d_feat`.
    pub feat_dim: usize,
    /// Time encoding dimension `d_time`.
    pub time_dim: usize,
    /// Frequency encoding dimension `d_freq`.
    pub freq_dim: usize,
    /// Candidate slots per root `m` (the identity encoding width).
    pub m: usize,
    /// Raw node feature dimension (0 = dataset has none).
    pub node_in: usize,
    /// Raw edge feature dimension (0 = dataset has none).
    pub edge_in: usize,
}

impl EncoderConfig {
    /// The paper's balanced configuration: all blocks share `dim`.
    pub fn balanced(dim: usize, m: usize, node_in: usize, edge_in: usize) -> Self {
        EncoderConfig {
            feat_dim: dim,
            time_dim: dim,
            freq_dim: dim,
            m,
            node_in,
            edge_in,
        }
    }

    /// Total neighbor embedding dimension `d_enc`.
    pub fn enc_dim(&self) -> usize {
        let mut d = self.time_dim + self.freq_dim + self.m;
        if self.node_in > 0 {
            d += self.feat_dim;
        }
        if self.edge_in > 0 {
            d += self.feat_dim;
        }
        d
    }
}

/// Sinusoidal positional encoding of a discrete frequency value (Eq. 12).
pub fn frequency_encoding(freq: usize, dim: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(dim);
    let f = freq as f32;
    for k in 0..dim {
        let pair = (k / 2) as f32;
        let denom = 10_000f32.powf(2.0 * pair / dim as f32);
        if k % 2 == 0 {
            out.push((f / denom).sin());
        } else {
            out.push((f / denom).cos());
        }
    }
    out
}

/// The learnable neighbor encoder.
pub struct NeighborEncoder {
    time_enc: FixedTimeEncoding,
    node_proj: Option<Linear>,
    edge_proj: Option<Linear>,
    cfg: EncoderConfig,
}

/// Encoder output: candidate embeddings plus the root embedding.
pub struct EncodedNeighborhood {
    /// Candidate embeddings `[R*m, d_enc]`.
    pub z: VarId,
    /// Root embeddings `[R, d_enc]` (Eq. 21).
    pub z_root: VarId,
    /// Valid-candidate mask `[R*m]`.
    pub mask: Vec<bool>,
}

impl NeighborEncoder {
    /// Builds the encoder; projections are created only for feature blocks
    /// the dataset actually has.
    pub fn new(store: &mut ParamStore, name: &str, cfg: EncoderConfig, seed: u64) -> Self {
        let node_proj = (cfg.node_in > 0).then(|| {
            Linear::new(
                store,
                &format!("{name}.wn"),
                cfg.node_in,
                cfg.feat_dim,
                seed ^ 0xA,
            )
        });
        let edge_proj = (cfg.edge_in > 0).then(|| {
            Linear::new(
                store,
                &format!("{name}.we"),
                cfg.edge_in,
                cfg.feat_dim,
                seed ^ 0xB,
            )
        });
        NeighborEncoder {
            time_enc: FixedTimeEncoding::new(cfg.time_dim),
            node_proj,
            edge_proj,
            cfg,
        }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Encodes candidate neighborhoods.
    ///
    /// * `roots` — `(node, time)` per root, defining `t_0`.
    /// * `candidates` — the `m`-budget output of the neighbor finder.
    /// * `node_feats` — raw node feature table (if the dataset has one).
    /// * `edge_buf` — pre-sliced candidate edge features `[R*m * edge_in]`
    ///   (zeros in padded slots), from the feature cache.
    pub fn encode(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        roots: &[(u32, f64)],
        candidates: &SampledNeighbors,
        node_feats: Option<&FeatureMatrix>,
        edge_buf: Option<&[f32]>,
    ) -> EncodedNeighborhood {
        let r = roots.len();
        let m = self.cfg.m;
        assert_eq!(candidates.roots, r, "candidate batch mismatch");
        assert_eq!(candidates.budget, m, "finder budget must equal encoder m");

        // Host-side blocks: Δt, frequency, identity, validity.
        let mut dts = vec![0.0f32; r * m];
        let mut freqs = vec![0usize; r * m];
        let mut identity = vec![0.0f32; r * m * m];
        let mut mask = vec![false; r * m];
        for (i, &(_, t0)) in roots.iter().enumerate() {
            let count = candidates.counts[i];
            let base = i * m;
            // frequency of each node within this neighborhood
            for j in 0..count {
                let uj = candidates.nodes[base + j];
                if uj == PAD {
                    continue;
                }
                mask[base + j] = true;
                dts[base + j] = (t0 - candidates.times[base + j]) as f32;
                let mut f = 0usize;
                for k in 0..count {
                    if candidates.nodes[base + k] == uj {
                        f += 1;
                        identity[(base + j) * m + k] = 1.0;
                    }
                }
                freqs[base + j] = f;
            }
        }

        // TE(Δt) and FE(freq) as leaves (fixed encodings).
        let te = self.time_enc.encode_leaf(g, &dts);
        let mut fe_data = Vec::with_capacity(r * m * self.cfg.freq_dim);
        for &f in &freqs {
            fe_data.extend(frequency_encoding(f, self.cfg.freq_dim));
        }
        let fe = g.leaf(Tensor::from_vec(fe_data, &[r * m, self.cfg.freq_dim]));
        let ie = g.leaf(Tensor::from_vec(identity, &[r * m, m]));

        // Projected contextual features (Eq. 14).
        let mut parts: Vec<VarId> = Vec::with_capacity(5);
        if let Some(proj) = &self.node_proj {
            let nf = node_feats.expect("encoder built with node features");
            let mut data = vec![0.0f32; r * m * self.cfg.node_in];
            for (s, &u) in candidates.nodes.iter().enumerate() {
                if u != PAD {
                    data[s * self.cfg.node_in..(s + 1) * self.cfg.node_in]
                        .copy_from_slice(nf.row(u as usize));
                }
            }
            let x = g.leaf(Tensor::from_vec(data, &[r * m, self.cfg.node_in]));
            let h = proj.forward(g, store, x);
            parts.push(g.gelu(h));
        }
        if let Some(proj) = &self.edge_proj {
            let buf = edge_buf.expect("encoder built with edge features");
            assert_eq!(buf.len(), r * m * self.cfg.edge_in, "edge buffer size");
            let x = g.leaf(Tensor::from_vec(buf.to_vec(), &[r * m, self.cfg.edge_in]));
            let h = proj.forward(g, store, x);
            parts.push(g.gelu(h));
        }
        parts.push(te);
        parts.push(fe);
        parts.push(ie);
        let z = g.concat_cols(&parts);

        // Root embedding (Eq. 21): {h(v) || TE(0) || FE(1)}, zero elsewhere.
        let mut root_parts: Vec<VarId> = Vec::with_capacity(5);
        if let Some(proj) = &self.node_proj {
            let nf = node_feats.expect("encoder built with node features");
            let mut data = vec![0.0f32; r * self.cfg.node_in];
            for (i, &(v, _)) in roots.iter().enumerate() {
                // deeper-hop target lists contain PAD placeholders for
                // empty neighborhoods — their rows stay zero
                if v != PAD {
                    data[i * self.cfg.node_in..(i + 1) * self.cfg.node_in]
                        .copy_from_slice(nf.row(v as usize));
                }
            }
            let x = g.leaf(Tensor::from_vec(data, &[r, self.cfg.node_in]));
            let h = proj.forward(g, store, x);
            root_parts.push(g.gelu(h));
        }
        if self.edge_proj.is_some() {
            root_parts.push(g.leaf(Tensor::zeros(&[r, self.cfg.feat_dim])));
        }
        root_parts.push(self.time_enc.encode_leaf(g, &vec![0.0; r]));
        let fe1: Vec<f32> = (0..r)
            .flat_map(|_| frequency_encoding(1, self.cfg.freq_dim))
            .collect();
        root_parts.push(g.leaf(Tensor::from_vec(fe1, &[r, self.cfg.freq_dim])));
        root_parts.push(g.leaf(Tensor::zeros(&[r, m])));
        let z_root = g.concat_cols(&root_parts);

        debug_assert_eq!(g.data(z).last_dim(), self.cfg.enc_dim());
        debug_assert_eq!(g.data(z_root).last_dim(), self.cfg.enc_dim());
        EncodedNeighborhood { z, z_root, mask }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_candidates(r: usize, m: usize, counts: &[usize]) -> SampledNeighbors {
        let mut c = SampledNeighbors::empty(r, m);
        for (i, &cnt) in counts.iter().enumerate().take(r) {
            for j in 0..cnt {
                let s = i * m + j;
                c.nodes[s] = (j % 3) as u32; // repeats: nodes 0,1,2,0,1,...
                c.times[s] = 10.0 - j as f64;
                c.eids[s] = s as u32;
            }
            c.counts[i] = counts[i];
        }
        c
    }

    #[test]
    fn frequency_encoding_properties() {
        let a = frequency_encoding(1, 8);
        let b = frequency_encoding(5, 8);
        assert_eq!(a.len(), 8);
        assert_ne!(a, b, "different frequencies must encode differently");
        // values bounded in [-1, 1]
        assert!(a.iter().chain(b.iter()).all(|v| v.abs() <= 1.0));
        // deterministic
        assert_eq!(frequency_encoding(5, 8), b);
    }

    #[test]
    fn enc_dim_accounts_for_present_blocks() {
        let full = EncoderConfig::balanced(16, 10, 8, 12);
        assert_eq!(full.enc_dim(), 16 + 16 + 16 + 16 + 10);
        let no_node = EncoderConfig::balanced(16, 10, 0, 12);
        assert_eq!(no_node.enc_dim(), 16 + 16 + 16 + 10);
        let bare = EncoderConfig::balanced(16, 10, 0, 0);
        assert_eq!(bare.enc_dim(), 16 + 16 + 10);
    }

    #[test]
    fn encode_shapes_and_mask() {
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::balanced(8, 5, 0, 4);
        let enc = NeighborEncoder::new(&mut store, "enc", cfg, 1);
        let cands = fake_candidates(2, 5, &[5, 2]);
        let edge_buf = vec![0.1f32; 2 * 5 * 4];
        let mut g = Graph::new();
        let out = enc.encode(
            &mut g,
            &store,
            &[(9, 20.0), (8, 15.0)],
            &cands,
            None,
            Some(&edge_buf),
        );
        assert_eq!(g.shape(out.z), &[10, cfg.enc_dim()]);
        assert_eq!(g.shape(out.z_root), &[2, cfg.enc_dim()]);
        assert_eq!(
            out.mask,
            vec![true, true, true, true, true, true, true, false, false, false]
        );
    }

    #[test]
    fn identity_encoding_marks_repeats() {
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::balanced(4, 4, 0, 0);
        let enc = NeighborEncoder::new(&mut store, "enc", cfg, 1);
        // candidates: nodes 0,1,2,0 -> slot 0 and slot 3 share identity
        let cands = fake_candidates(1, 4, &[4]);
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &[(9, 20.0)], &cands, None, None);
        let z = g.data(out.z);
        let d = cfg.enc_dim();
        let ie_off = d - 4; // identity block is last
                            // slot 0 (node 0): identity pattern 1,0,0,1
        assert_eq!(z.data()[ie_off], 1.0);
        assert_eq!(z.data()[ie_off + 1], 0.0);
        assert_eq!(z.data()[ie_off + 3], 1.0);
        // slot 1 (node 1): pattern 0,1,0,0
        assert_eq!(z.data()[d + ie_off + 1], 1.0);
        assert_eq!(z.data()[d + ie_off + 3], 0.0);
    }

    #[test]
    fn gradients_reach_projections() {
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::balanced(8, 3, 6, 4);
        let enc = NeighborEncoder::new(&mut store, "enc", cfg, 1);
        let cands = fake_candidates(2, 3, &[3, 3]);
        let nf = FeatureMatrix::from_vec(vec![0.3; 12 * 6], 6);
        let edge_buf = vec![0.2f32; 2 * 3 * 4];
        let mut g = Graph::new();
        let out = enc.encode(
            &mut g,
            &store,
            &[(9, 20.0), (8, 15.0)],
            &cands,
            Some(&nf),
            Some(&edge_buf),
        );
        let sq = g.square(out.z);
        let loss = g.sum_all(sq);
        g.backward(loss);
        g.flush_grads(&mut store);
        assert!(
            store.grad_norm_total() > 0.0,
            "encoder projections got no gradient"
        );
    }

    #[test]
    fn pad_roots_with_node_features_encode_as_zeros() {
        // Regression: hop-1 target lists contain PAD placeholders; with
        // node features present these must not index the feature table.
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::balanced(4, 3, 5, 0);
        let enc = NeighborEncoder::new(&mut store, "enc", cfg, 1);
        let cands = fake_candidates(2, 3, &[3, 0]);
        let nf = FeatureMatrix::from_vec(vec![0.5; 10 * 5], 5);
        let mut g = Graph::new();
        let out = enc.encode(
            &mut g,
            &store,
            &[(9, 20.0), (taser_sample::PAD, 0.0)],
            &cands,
            Some(&nf),
            None,
        );
        assert!(g.data(out.z_root).all_finite());
        assert_eq!(
            out.mask[3..6],
            [false, false, false],
            "PAD root has no candidates"
        );
    }

    #[test]
    fn root_embedding_has_te0_and_fe1() {
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::balanced(6, 3, 0, 0);
        let enc = NeighborEncoder::new(&mut store, "enc", cfg, 1);
        let cands = fake_candidates(1, 3, &[3]);
        let mut g = Graph::new();
        let out = enc.encode(&mut g, &store, &[(9, 20.0)], &cands, None, None);
        let zr = g.data(out.z_root);
        // TE(0) = cos(0) = all ones (first 6 entries)
        for k in 0..6 {
            assert!((zr.data()[k] - 1.0).abs() < 1e-6, "TE(0)[{k}]");
        }
        // FE(1) block next
        let fe1 = frequency_encoding(1, 6);
        for (k, &f) in fe1.iter().enumerate().take(6) {
            assert!((zr.data()[6 + k] - f).abs() < 1e-6, "FE(1)[{k}]");
        }
        // identity block is zero
        for k in 0..3 {
            assert_eq!(zr.data()[12 + k], 0.0);
        }
    }
}
