//! Fenwick (binary indexed) tree over non-negative weights, supporting
//! O(log n) point updates and O(log n) weighted draws — the engine behind
//! adaptive mini-batch selection over hundreds of thousands of training
//! edges.

/// Fenwick tree over `f64` weights.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<f64>,
    weights: Vec<f64>,
}

impl Fenwick {
    /// A tree of `n` zero weights.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0.0; n + 1],
            weights: vec![0.0; n],
        }
    }

    /// Builds from initial weights in O(n).
    pub fn from_weights(weights: &[f64]) -> Self {
        let n = weights.len();
        let mut tree = vec![0.0; n + 1];
        for (i, &w) in weights.iter().enumerate() {
            assert!(w >= 0.0 && w.is_finite(), "weight {w} at {i} invalid");
            tree[i + 1] += w;
            let parent = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if parent <= n {
                let v = tree[i + 1];
                tree[parent] += v;
            }
        }
        Fenwick {
            tree,
            weights: weights.to_vec(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of item `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Sets the weight of item `i`.
    pub fn set(&mut self, i: usize, w: f64) {
        assert!(w >= 0.0 && w.is_finite(), "weight {w} invalid");
        let delta = w - self.weights[i];
        self.weights[i] = w;
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] += delta;
            j += j & j.wrapping_neg();
        }
    }

    /// Total weight.
    pub fn total(&self) -> f64 {
        self.prefix_sum(self.len())
    }

    /// Sum of weights of items `< end`.
    pub fn prefix_sum(&self, end: usize) -> f64 {
        let mut s = 0.0;
        let mut j = end;
        while j > 0 {
            s += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        s
    }

    /// Finds the item whose cumulative weight interval contains `x`
    /// (`0 <= x < total`): the smallest index with `prefix_sum(i+1) > x`.
    /// Zero-weight items are skipped by construction. O(log n) descent.
    pub fn find(&self, x: f64) -> usize {
        let n = self.len();
        let mut pos = 0usize;
        let mut rem = x;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] <= rem {
                rem -= self.tree[next];
                pos = next;
            }
            step /= 2;
        }
        pos.min(n - 1)
    }

    /// Draws one index with probability proportional to its weight, using
    /// uniform `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        let t = self.total();
        assert!(t > 0.0, "cannot sample from all-zero weights");
        self.find(u * t)
    }

    /// Draws `k` distinct indices proportional to weight (without
    /// replacement): weights are zeroed during the draw and restored after.
    pub fn sample_without_replacement(
        &mut self,
        k: usize,
        mut uniform: impl FnMut() -> f64,
    ) -> Vec<usize> {
        let k = k.min(self.len());
        let mut out = Vec::with_capacity(k);
        let mut saved = Vec::with_capacity(k);
        for _ in 0..k {
            if self.total() <= 0.0 {
                break;
            }
            let i = self.sample(uniform());
            saved.push((i, self.get(i)));
            self.set(i, 0.0);
            out.push(i);
        }
        for (i, w) in saved {
            self.set(i, w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn prefix_sums_match_naive() {
        let w = [1.0, 2.0, 0.5, 4.0, 0.0, 3.0];
        let f = Fenwick::from_weights(&w);
        let mut acc = 0.0;
        for i in 0..=w.len() {
            assert!((f.prefix_sum(i) - acc).abs() < 1e-12, "prefix {i}");
            if i < w.len() {
                acc += w[i];
            }
        }
        assert!((f.total() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn set_updates_sums() {
        let mut f = Fenwick::from_weights(&[1.0, 1.0, 1.0]);
        f.set(1, 5.0);
        assert!((f.total() - 7.0).abs() < 1e-12);
        assert!((f.prefix_sum(2) - 6.0).abs() < 1e-12);
        assert_eq!(f.get(1), 5.0);
    }

    #[test]
    fn find_maps_intervals_to_indices() {
        let f = Fenwick::from_weights(&[1.0, 0.0, 2.0, 1.0]);
        // intervals: [0,1) -> 0, [1,3) -> 2, [3,4) -> 3
        assert_eq!(f.find(0.0), 0);
        assert_eq!(f.find(0.99), 0);
        assert_eq!(f.find(1.0), 2);
        assert_eq!(f.find(2.5), 2);
        assert_eq!(f.find(3.2), 3);
    }

    #[test]
    fn sampling_distribution_tracks_weights() {
        let f = Fenwick::from_weights(&[1.0, 3.0, 6.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = [0usize; 3];
        for _ in 0..30_000 {
            hits[f.sample(rng.gen())] += 1;
        }
        let ratios: Vec<f64> = hits.iter().map(|&h| h as f64 / 30_000.0).collect();
        assert!((ratios[0] - 0.1).abs() < 0.02, "{ratios:?}");
        assert!((ratios[1] - 0.3).abs() < 0.02, "{ratios:?}");
        assert!((ratios[2] - 0.6).abs() < 0.02, "{ratios:?}");
    }

    #[test]
    fn without_replacement_distinct_and_restores() {
        let mut f = Fenwick::from_weights(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let before = f.total();
        let mut rng = StdRng::seed_from_u64(1);
        let picks = f.sample_without_replacement(3, || rng.gen());
        assert_eq!(picks.len(), 3);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "duplicates in {picks:?}");
        assert!((f.total() - before).abs() < 1e-9, "weights not restored");
    }

    #[test]
    fn without_replacement_stops_on_exhaustion() {
        let mut f = Fenwick::from_weights(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let picks = f.sample_without_replacement(3, || rng.gen());
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn zero_weight_items_never_sampled() {
        let f = Fenwick::from_weights(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = f.sample(rng.gen());
            assert!(i == 1 || i == 3, "sampled zero-weight item {i}");
        }
    }

    #[test]
    fn large_tree_consistency() {
        let w: Vec<f64> = (0..10_000).map(|i| (i % 17) as f64).collect();
        let f = Fenwick::from_weights(&w);
        let naive: f64 = w.iter().sum();
        assert!((f.total() - naive).abs() < 1e-6);
        assert!((f.prefix_sum(7777) - w[..7777].iter().sum::<f64>()).abs() < 1e-6);
    }
}
