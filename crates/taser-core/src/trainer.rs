//! The end-to-end TASER training pipeline (Fig. 2, Algorithm 1).
//!
//! One iteration: (a) adaptively select a mini-batch of training edges,
//! (b) find `m` candidate temporal neighbors per target with the GPU finder,
//! (c) slice candidate features through the dynamic cache, (d) adaptively
//! sub-sample `n` supporting neighbors, (e) run the TGNN forward/backward,
//! update the importance scores, and co-train the sampler by REINFORCE.
//!
//! The [`Variant`] enum turns the two adaptive components on independently,
//! matching the four rows of Table I; [`PhaseTimings`] instruments the four
//! runtime phases of Table III (NF / AS / FS / PP).

use crate::cotrain::{coefficients, CoTrainStrategy};
use crate::decoder::{DecoderConfig, DecoderHead};
use crate::encoder::EncoderConfig;
use crate::minibatch::MiniBatchSelector;
use crate::sampler::{sample_loss, AdaptiveNeighborSampler, SampleLossTerm, NO_SLOT};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use taser_cache::{CachePolicy, EpochCacheReport, FeatureStore};
use taser_graph::dataset::TemporalDataset;
use taser_graph::events::Event;
use taser_graph::feats::FeatureMatrix;
use taser_graph::index::TemporalIndex;
use taser_models::batch::LayerBatch;
use taser_models::eval::mrr_from_scores;
use taser_models::graphmixer::{MixerAggregator, MixerConfig};
use taser_models::infer::{InferArgs, PackedModel};
use taser_models::predictor::{link_prediction_loss, EdgePredictor};
use taser_models::tgat::{TgatConfig, TgatLayer};
use taser_models::{Aggregator, Feedback};
use taser_sample::{FinderKind, NeighborFinder, SamplePolicy, SampledNeighbors, PAD};
use taser_tensor::{AdamConfig, Graph, InferCtx, ParamStore, Tensor, VarId};

/// Which backbone TGNN to train (§IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backbone {
    /// 2-layer attention aggregator, uniform neighbor finding.
    Tgat,
    /// 1-layer MLP-Mixer aggregator, most-recent neighbor finding.
    GraphMixer,
}

impl Backbone {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Backbone::Tgat => "TGAT",
            Backbone::GraphMixer => "GraphMixer",
        }
    }

    /// Number of aggregation layers.
    pub fn layers(&self) -> usize {
        match self {
            Backbone::Tgat => 2,
            Backbone::GraphMixer => 1,
        }
    }

    /// The backbone's default neighbor-finding policy.
    pub fn policy(&self) -> SamplePolicy {
        match self {
            Backbone::Tgat => SamplePolicy::Uniform,
            Backbone::GraphMixer => SamplePolicy::MostRecent,
        }
    }
}

/// The four rows of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Chronological mini-batches, static neighbor sampling.
    Baseline,
    /// + temporal adaptive mini-batch selection (§III-A).
    AdaMiniBatch,
    /// + temporal adaptive neighbor sampling (§III-B).
    AdaNeighbor,
    /// Both adaptive components (full TASER).
    Taser,
}

impl Variant {
    /// Whether adaptive mini-batch selection is active.
    pub fn adaptive_minibatch(&self) -> bool {
        matches!(self, Variant::AdaMiniBatch | Variant::Taser)
    }

    /// Whether adaptive neighbor sampling is active.
    pub fn adaptive_neighbor(&self) -> bool {
        matches!(self, Variant::AdaNeighbor | Variant::Taser)
    }

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Baseline => "Baseline",
            Variant::AdaMiniBatch => "w/ Ada.Mini-Batch",
            Variant::AdaNeighbor => "w/ Ada.Neighbor",
            Variant::Taser => "TASER",
        }
    }

    /// All four variants in Table I order.
    pub fn all() -> [Variant; 4] {
        [
            Variant::Baseline,
            Variant::AdaMiniBatch,
            Variant::AdaNeighbor,
            Variant::Taser,
        ]
    }
}

/// Trainer configuration. Defaults follow the paper's hyperparameters
/// (γ = 0.1, α = 2, β = 1, n = 10, m = 25) at CI-friendly model sizes.
#[derive(Clone, Copy, Debug)]
pub struct TrainerConfig {
    /// Backbone TGNN.
    pub backbone: Backbone,
    /// Which adaptive components are enabled.
    pub variant: Variant,
    /// Training epochs.
    pub epochs: usize,
    /// Positive edges per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Hidden/model dimension.
    pub hidden: usize,
    /// Time encoding dimension.
    pub time_dim: usize,
    /// TGAT attention heads.
    pub heads: usize,
    /// Dropout during training.
    pub dropout: f32,
    /// Supporting neighbors per node (`n`).
    pub n_neighbors: usize,
    /// Neighbor-finder candidate budget (`m`, adaptive variants only).
    pub finder_budget: usize,
    /// Exploration floor of Eq. 11.
    pub gamma: f64,
    /// REINFORCE coefficient strategy (Eq. 25/26 closed form by default).
    pub cotrain: CoTrainStrategy,
    /// Sampler decoder head (Eq. 17-20).
    pub decoder_head: DecoderHead,
    /// Sampler encoder block dimension (`d_feat = d_time = d_freq`).
    pub sampler_dim: usize,
    /// Which neighbor finder implementation to use.
    pub finder: FinderKind,
    /// Overrides the backbone's default neighbor-finding policy (e.g. to
    /// reproduce the inverse-timespan heuristic comparison of §II-C).
    pub policy_override: Option<SamplePolicy>,
    /// Edge-feature cache policy.
    pub cache: CachePolicy,
    /// Negatives per positive in MRR evaluation (paper: 49).
    pub eval_negatives: usize,
    /// Evaluate on at most this many events (`None` = all).
    pub eval_events: Option<usize>,
    /// Events per evaluation forward pass.
    pub eval_chunk: usize,
    /// Which forward implementation the inference-only evaluation passes
    /// run on (training always uses the tape).
    pub eval_path: EvalPath,
    /// Master seed.
    pub seed: u64,
}

/// Scoring implementation for the trainer's inference-only evaluation
/// passes ([`Trainer::evaluate`] / [`Trainer::eval_scores`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvalPath {
    /// The packed, tape-free fast path (PR 4 kernels): weights packed once
    /// per evaluation call, forwards on an [`InferCtx`] bump arena. The
    /// default — evaluation allocates no tape and runs the same kernels
    /// serving does.
    #[default]
    Fast,
    /// The autograd tape — the historical behavior, kept as the
    /// differential oracle (`tests` hold Fast to within 1e-4 of it).
    Tape,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            backbone: Backbone::GraphMixer,
            variant: Variant::Taser,
            epochs: 5,
            batch_size: 200,
            lr: 1e-3,
            hidden: 64,
            time_dim: 32,
            heads: 2,
            dropout: 0.1,
            n_neighbors: 10,
            finder_budget: 25,
            gamma: 0.1,
            cotrain: CoTrainStrategy::default(),
            decoder_head: DecoderHead::Linear,
            sampler_dim: 32,
            finder: FinderKind::Gpu,
            policy_override: None,
            cache: CachePolicy::None,
            eval_negatives: 49,
            eval_events: Some(200),
            eval_chunk: 25,
            eval_path: EvalPath::Fast,
            seed: 42,
        }
    }
}

/// Wall-clock time spent in each pipeline phase (Table III columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Neighbor finding.
    pub neighbor_find: Duration,
    /// Adaptive neighbor sampling (encoder/decoder forward + REINFORCE).
    pub adaptive_sample: Duration,
    /// Feature slicing (cache gathers + tensor assembly).
    pub feature_slice: Duration,
    /// Forward + backward propagation + optimizer steps.
    pub propagate: Duration,
}

impl PhaseTimings {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.neighbor_find + self.adaptive_sample + self.feature_slice + self.propagate
    }

    /// Accumulates another timing record.
    pub fn add(&mut self, other: &PhaseTimings) {
        self.neighbor_find += other.neighbor_find;
        self.adaptive_sample += other.adaptive_sample;
        self.feature_slice += other.feature_slice;
        self.propagate += other.propagate;
    }
}

/// Per-epoch record.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Phase timings for the epoch.
    pub timings: PhaseTimings,
    /// Modeled feature-slicing time (VRAM/PCIe transfer model).
    pub modeled_slice_time: Duration,
    /// Cache maintenance report, when a cache is configured.
    pub cache: Option<EpochCacheReport>,
    /// Accumulated simulated-device kernel stats (GPU finder only).
    pub kernel: Option<taser_sample::KernelStats>,
    /// Modeled neighbor-finding time on the simulated device (GPU finder
    /// only; CPU finders' cost is their wall time in `timings`).
    pub modeled_nf_time: Duration,
}

/// Result of a full training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch records.
    pub epochs: Vec<EpochReport>,
    /// MRR on the validation split.
    pub val_mrr: f64,
    /// MRR on the test split.
    pub test_mrr: f64,
}

enum Model {
    Tgat {
        l1: TgatLayer,
        l2: TgatLayer,
        predictor: EdgePredictor,
    },
    Mixer {
        agg: MixerAggregator,
        predictor: EdgePredictor,
    },
}

/// One sampling hop of the support tree.
struct Hop {
    targets: Vec<(u32, f64)>,
    selected: SampledNeighbors,
    /// Candidate slot per selection (adaptive only).
    slots: Option<Vec<usize>>,
    /// Sampler policy vars on the sampler tape (adaptive only).
    log_q: Option<VarId>,
    /// Candidate budget of the policy term.
    m: usize,
    /// Selected edge features, flat `[targets * n * de]` (zeros at pads).
    edge_buf: Option<Vec<f32>>,
    /// Δt per selected slot.
    delta_t: Vec<f32>,
    /// Validity per selected slot.
    mask: Vec<bool>,
}

/// Flat TGAT combined-layout layer-1 inputs (hop-0 segment as the prefix),
/// produced by `Trainer::combined_tgat_inputs` for both scoring paths.
struct CombinedTgatInputs {
    /// Layer-1 target nodes `T1 = L0 ++ L1`.
    t1_nodes: Vec<u32>,
    /// Neighbor nodes `[S0 | S1]`, `n` slots per target.
    neigh_nodes: Vec<u32>,
    /// Concatenated edge features, when the model has them.
    edge_buf: Option<Vec<f32>>,
    /// Δt per neighbor slot.
    delta_t: Vec<f32>,
    /// Validity per neighbor slot.
    mask: Vec<bool>,
}

/// The TASER trainer.
pub struct Trainer {
    cfg: TrainerConfig,
    model: Model,
    model_store: ParamStore,
    sampler: Option<AdaptiveNeighborSampler>,
    sampler_store: ParamStore,
    selector: Option<MiniBatchSelector>,
    finder: NeighborFinder,
    edge_store: Option<FeatureStore>,
    node_feats: Option<FeatureMatrix>,
    /// The temporal adjacency index neighbor finding runs against. Any
    /// [`TemporalIndex`] backend works — `TCsr` for offline datasets (the
    /// default), `IncTcsr` when training off a live incremental index.
    index: Box<dyn TemporalIndex>,
    d0: usize,
    edge_dim: usize,
    rng: StdRng,
    step: u64,
    epoch_kernel: Option<taser_sample::KernelStats>,
}

impl Trainer {
    /// Builds a trainer for `ds` under `cfg`, indexing the dataset's full
    /// log with a freshly built `TCsr`.
    pub fn new(cfg: TrainerConfig, ds: &TemporalDataset) -> Self {
        Self::with_index(cfg, ds, Box::new(ds.tcsr()))
    }

    /// Builds a trainer for `ds` that finds neighbors through a caller
    /// provided index (e.g. an `IncTcsr` snapshot of a live stream). The
    /// index must cover the dataset's nodes and events.
    pub fn with_index(
        cfg: TrainerConfig,
        ds: &TemporalDataset,
        index: Box<dyn TemporalIndex>,
    ) -> Self {
        assert!(cfg.n_neighbors >= 1);
        let d0 = ds.node_dim().max(1);
        let edge_dim = ds.edge_dim();
        let mut model_store = ParamStore::new();
        let model = match cfg.backbone {
            Backbone::Tgat => {
                let l1 = TgatLayer::new(
                    &mut model_store,
                    "tgat.l1",
                    TgatConfig {
                        in_dim: d0,
                        edge_dim,
                        time_dim: cfg.time_dim,
                        out_dim: cfg.hidden,
                        heads: cfg.heads,
                        dropout: cfg.dropout,
                    },
                    cfg.seed ^ 0x100,
                );
                let l2 = TgatLayer::new(
                    &mut model_store,
                    "tgat.l2",
                    TgatConfig {
                        in_dim: cfg.hidden,
                        edge_dim,
                        time_dim: cfg.time_dim,
                        out_dim: cfg.hidden,
                        heads: cfg.heads,
                        dropout: cfg.dropout,
                    },
                    cfg.seed ^ 0x200,
                );
                let predictor =
                    EdgePredictor::new(&mut model_store, "pred", cfg.hidden, cfg.seed ^ 0x300);
                Model::Tgat { l1, l2, predictor }
            }
            Backbone::GraphMixer => {
                let agg = MixerAggregator::new(
                    &mut model_store,
                    "gm",
                    MixerConfig {
                        in_dim: d0,
                        edge_dim,
                        time_dim: cfg.time_dim,
                        out_dim: cfg.hidden,
                        tokens: cfg.n_neighbors,
                        dropout: cfg.dropout,
                    },
                    cfg.seed ^ 0x400,
                );
                let predictor =
                    EdgePredictor::new(&mut model_store, "pred", cfg.hidden, cfg.seed ^ 0x300);
                Model::Mixer { agg, predictor }
            }
        };

        let mut sampler_store = ParamStore::new();
        let sampler = cfg.variant.adaptive_neighbor().then(|| {
            let enc = EncoderConfig::balanced(
                cfg.sampler_dim,
                cfg.finder_budget,
                ds.node_dim(),
                edge_dim,
            );
            let dec = DecoderConfig {
                enc_dim: enc.enc_dim(),
                m: cfg.finder_budget,
                head_dim: cfg.sampler_dim,
                head: cfg.decoder_head,
            };
            AdaptiveNeighborSampler::new(&mut sampler_store, enc, dec, cfg.n_neighbors, cfg.seed)
        });
        // The TGL finder only answers chronologically ordered queries, which
        // rules out both adaptive mini-batch order and the unsorted root
        // layout of MRR evaluation — exactly the limitation the paper cites
        // for it (§III-C). It is benchmarked standalone in Fig. 3a instead.
        assert!(
            cfg.finder != FinderKind::Tgl,
            "the TGL finder is chronological-only and cannot serve the TASER \
             trainer; use FinderKind::Origin or FinderKind::Gpu (see Fig. 3a \
             for the standalone TGL comparison)"
        );

        let selector = cfg
            .variant
            .adaptive_minibatch()
            .then(|| MiniBatchSelector::new(ds.train_events().len().max(1), cfg.gamma));

        let edge_store = ds
            .edge_feats
            .as_ref()
            .map(|f| FeatureStore::new(f.clone(), cfg.cache, cfg.seed ^ 0xCAFE));

        Trainer {
            cfg,
            model,
            model_store,
            sampler,
            sampler_store,
            selector,
            finder: NeighborFinder::new(cfg.finder, ds.num_nodes),
            edge_store,
            node_feats: ds.node_feats.clone(),
            index,
            d0,
            edge_dim,
            rng: StdRng::seed_from_u64(cfg.seed),
            step: 0,
            epoch_kernel: None,
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Total parameter count (model + sampler).
    pub fn num_params(&self) -> usize {
        self.model_store.total_elems() + self.sampler_store.total_elems()
    }

    /// Mutable access to the edge-feature store (trace recording, transfer
    /// model overrides). `None` when the dataset has no edge features.
    pub fn edge_store_mut(&mut self) -> Option<&mut FeatureStore> {
        self.edge_store.as_mut()
    }

    /// Writes a checkpoint (model + sampler parameters, including Adam
    /// state) to `path`.
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.model_store.save(&mut f)?;
        self.sampler_store.save(&mut f)?;
        use std::io::Write;
        f.flush()
    }

    /// Exports the trained model as a serving artifact: architecture spec,
    /// frozen parameters, and the dataset's static feature tables. The
    /// artifact is what `taser-serve` loads — unlike
    /// [`Trainer::save_checkpoint`] it is self-describing (no need to
    /// reconstruct a trainer of the same architecture first). The adaptive
    /// sampler is a training-time accelerator and is not exported.
    pub fn export_artifact(&self, ds: &TemporalDataset) -> taser_models::ModelArtifact {
        taser_models::ModelArtifact {
            spec: self.model_spec(),
            store: self.model_store.clone(),
            node_feats: self.node_feats.clone(),
            edge_feats: ds.edge_feats.clone(),
        }
    }

    /// The architecture spec describing this trainer's model — the contract
    /// shared by serving artifacts ([`Trainer::export_artifact`]) and the
    /// packed fast path the evaluation passes run on.
    pub fn model_spec(&self) -> taser_models::ModelSpec {
        use taser_models::artifact::ArtifactPolicy;
        let backbone = match self.cfg.backbone {
            Backbone::Tgat => taser_models::ArtifactBackbone::Tgat,
            Backbone::GraphMixer => taser_models::ArtifactBackbone::GraphMixer,
        };
        // the *effective* training policy, override included, so serving
        // samples support neighborhoods from the trained distribution
        let policy = match self
            .cfg
            .policy_override
            .unwrap_or_else(|| self.cfg.backbone.policy())
        {
            SamplePolicy::Uniform => ArtifactPolicy::Uniform,
            SamplePolicy::MostRecent => ArtifactPolicy::MostRecent,
            SamplePolicy::InverseTimespan { delta } => ArtifactPolicy::InverseTimespan { delta },
        };
        taser_models::ModelSpec {
            backbone,
            in_dim: self.d0,
            edge_dim: self.edge_dim,
            hidden: self.cfg.hidden,
            time_dim: self.cfg.time_dim,
            heads: self.cfg.heads,
            n_neighbors: self.cfg.n_neighbors,
            dropout: self.cfg.dropout,
            policy,
        }
    }

    /// Restores a checkpoint written by [`Trainer::save_checkpoint`] into a
    /// trainer of the *same architecture* (validated by parameter names and
    /// shapes).
    pub fn load_checkpoint(&mut self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let model = ParamStore::load(&mut f)?;
        let sampler = ParamStore::load(&mut f)?;
        if !model.compatible_with(&self.model_store)
            || !sampler.compatible_with(&self.sampler_store)
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "checkpoint does not match this trainer's architecture",
            ));
        }
        self.model_store = model;
        self.sampler_store = sampler;
        Ok(())
    }

    fn next_seed(&mut self) -> u64 {
        self.step += 1;
        self.cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.step)
    }

    /// Raw input embeddings (`h^(0)`) for a list of nodes; PAD rows zero.
    fn h0(&self, nodes: &[u32]) -> Tensor {
        let mut t = Tensor::zeros(&[nodes.len(), self.d0]);
        if let Some(nf) = &self.node_feats {
            for (i, &v) in nodes.iter().enumerate() {
                if v != PAD {
                    t.data_mut()[i * self.d0..(i + 1) * self.d0]
                        .copy_from_slice(nf.row(v as usize));
                }
            }
        }
        t
    }

    /// Slices edge features for possibly-padded edge ids through the cache,
    /// returning a zero-padded flat buffer `[eids.len() * de]`.
    fn slice_edges(&mut self, eids: &[u32]) -> Vec<f32> {
        let de = self.edge_dim;
        let mut buf = vec![0.0f32; eids.len() * de];
        if de == 0 {
            return buf;
        }
        let store = self
            .edge_store
            .as_mut()
            .expect("edge store present when edge_dim > 0");
        let valid: Vec<u32> = eids.iter().copied().filter(|&e| e != PAD).collect();
        if valid.is_empty() {
            return buf;
        }
        let (data, _) = store.gather(&valid);
        let mut k = 0;
        for (i, &e) in eids.iter().enumerate() {
            if e != PAD {
                buf[i * de..(i + 1) * de].copy_from_slice(&data[k * de..(k + 1) * de]);
                k += 1;
            }
        }
        buf
    }

    /// Neighbor finding that tolerates PAD targets (returns empty slots).
    fn find(
        &mut self,
        targets: &[(u32, f64)],
        budget: usize,
        policy: SamplePolicy,
        seed: u64,
    ) -> SampledNeighbors {
        let valid_idx: Vec<usize> = (0..targets.len())
            .filter(|&i| targets[i].0 != PAD)
            .collect();
        let queries: Vec<(u32, f64)> = valid_idx.iter().map(|&i| targets[i]).collect();
        let (sub, stats) =
            self.finder
                .sample_with_stats(self.index.as_ref(), &queries, budget, policy, seed);
        if let Some(s) = stats {
            self.epoch_kernel = Some(match self.epoch_kernel {
                Some(acc) => acc.merge(s),
                None => s,
            });
        }
        let mut full = SampledNeighbors::empty(targets.len(), budget);
        for (qi, &ti) in valid_idx.iter().enumerate() {
            full.counts[ti] = sub.counts[qi];
            let src = qi * budget;
            let dst = ti * budget;
            full.nodes[dst..dst + budget].copy_from_slice(&sub.nodes[src..src + budget]);
            full.times[dst..dst + budget].copy_from_slice(&sub.times[src..src + budget]);
            full.eids[dst..dst + budget].copy_from_slice(&sub.eids[src..src + budget]);
        }
        full
    }

    /// Builds the L-hop support tree for a set of roots, running the
    /// adaptive sampler when enabled. `sg` is the sampler tape; hop seeds
    /// derive deterministically from `base_seed`.
    fn build_hops(
        &mut self,
        sg: &mut Graph,
        roots: Vec<(u32, f64)>,
        timings: &mut PhaseTimings,
        base_seed: u64,
    ) -> Vec<Hop> {
        let layers = self.cfg.backbone.layers();
        let n = self.cfg.n_neighbors;
        let policy = self
            .cfg
            .policy_override
            .unwrap_or_else(|| self.cfg.backbone.policy());
        let adaptive = self.sampler.is_some();
        let mut hops = Vec::with_capacity(layers);
        let mut targets = roots;
        for hop_idx in 0..layers {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(hop_idx as u64 + 1);
            let (selected, slots, log_q, m, cand_buf) = if adaptive {
                let m = self.cfg.finder_budget;
                let t0 = Instant::now();
                let cands = self.find(&targets, m, policy, seed);
                timings.neighbor_find += t0.elapsed();

                let t1 = Instant::now();
                let cand_buf = (self.edge_dim > 0).then(|| self.slice_edges(&cands.eids));
                timings.feature_slice += t1.elapsed();

                let t2 = Instant::now();
                let node_feats = self.node_feats.clone();
                let sampler = self.sampler.as_ref().expect("adaptive sampler");
                let sel = sampler.select(
                    sg,
                    &self.sampler_store,
                    &targets,
                    &cands,
                    node_feats.as_ref(),
                    cand_buf.as_deref(),
                    seed ^ 0x5E1,
                );
                timings.adaptive_sample += t2.elapsed();
                (
                    sel.selected,
                    Some(sel.slots),
                    Some(sel.policy.log_q),
                    m,
                    cand_buf,
                )
            } else {
                let t0 = Instant::now();
                let sel = self.find(&targets, n, policy, seed);
                timings.neighbor_find += t0.elapsed();
                (sel, None, None, n, None)
            };

            // Selected edge features: reuse the candidate slice when
            // adaptive (no second cache access), otherwise gather now.
            let t3 = Instant::now();
            let edge_buf = if self.edge_dim > 0 {
                let de = self.edge_dim;
                Some(match (&cand_buf, &slots) {
                    (Some(cb), Some(sl)) => {
                        let mut buf = vec![0.0f32; targets.len() * n * de];
                        for (s, &slot) in sl.iter().enumerate() {
                            if slot != NO_SLOT {
                                let root = s / n;
                                let src = (root * self.cfg.finder_budget + slot) * de;
                                buf[s * de..(s + 1) * de].copy_from_slice(&cb[src..src + de]);
                            }
                        }
                        buf
                    }
                    _ => self.slice_edges(&selected.eids),
                })
            } else {
                None
            };

            // Δt and mask per selected slot.
            let mut delta_t = vec![0.0f32; targets.len() * n];
            let mut mask = vec![false; targets.len() * n];
            for (i, &(_, t0)) in targets.iter().enumerate() {
                for j in 0..selected.counts[i] {
                    let s = i * n + j;
                    if selected.nodes[s] != PAD {
                        mask[s] = true;
                        delta_t[s] = (t0 - selected.times[s]) as f32;
                    }
                }
            }
            timings.feature_slice += t3.elapsed();

            let next_targets: Vec<(u32, f64)> = (0..targets.len() * n)
                .map(|s| {
                    if mask[s] {
                        (selected.nodes[s], selected.times[s])
                    } else {
                        (PAD, 0.0)
                    }
                })
                .collect();
            hops.push(Hop {
                targets,
                selected,
                slots,
                log_q,
                m,
                edge_buf,
                delta_t,
                mask,
            });
            targets = next_targets;
        }
        hops
    }

    /// Assembles the flat TGAT combined layout from a 2-hop support tree:
    /// layer 1 runs on `T1 = L0 ++ L1` with neighbors `[S0 | S1]`, so every
    /// array carries the hop-0 segment as the prefix. Shared by the tape
    /// forward and the packed evaluation path — the two scoring
    /// implementations are each other's differential oracle and must never
    /// drift on this layout.
    fn combined_tgat_inputs(&self, hops: &[Hop]) -> CombinedTgatInputs {
        let hop0 = &hops[0];
        let hop1 = &hops[1];
        let mut t1_nodes: Vec<u32> = hop0.targets.iter().map(|&(v, _)| v).collect();
        t1_nodes.extend(hop1.targets.iter().map(|&(v, _)| v));
        let mut neigh_nodes = hop0.selected.nodes.clone();
        neigh_nodes.extend_from_slice(&hop1.selected.nodes);
        let edge_buf = (self.edge_dim > 0).then(|| {
            let mut buf = hop0.edge_buf.clone().unwrap_or_default();
            buf.extend_from_slice(hop1.edge_buf.as_ref().expect("edge buf"));
            buf
        });
        let mut delta_t = hop0.delta_t.clone();
        delta_t.extend_from_slice(&hop1.delta_t);
        let mut mask = hop0.mask.clone();
        mask.extend_from_slice(&hop1.mask);
        CombinedTgatInputs {
            t1_nodes,
            neigh_nodes,
            edge_buf,
            delta_t,
            mask,
        }
    }

    /// Runs the backbone forward over a built support tree. Returns the root
    /// embeddings and per-layer feedback (outermost layer last).
    fn forward(
        &self,
        g: &mut Graph,
        hops: &[Hop],
        training: bool,
        seed: u64,
    ) -> (VarId, Vec<Feedback>) {
        let n = self.cfg.n_neighbors;
        let de = self.edge_dim;
        match &self.model {
            Model::Mixer { agg, .. } => {
                let hop = &hops[0];
                let r = hop.targets.len();
                let root_nodes: Vec<u32> = hop.targets.iter().map(|&(v, _)| v).collect();
                let root_feat = g.leaf(self.h0(&root_nodes));
                let neigh_feat = g.leaf(self.h0(&hop.selected.nodes));
                let edge_feat = hop
                    .edge_buf
                    .as_ref()
                    .map(|b| g.leaf(Tensor::from_vec(b.clone(), &[r * n, de])));
                let batch = LayerBatch::new(
                    g,
                    r,
                    n,
                    root_feat,
                    neigh_feat,
                    edge_feat,
                    hop.delta_t.clone(),
                    hop.mask.clone(),
                );
                let out = agg.forward(g, &self.model_store, &batch, training, seed);
                (out.h, vec![out.feedback])
            }
            Model::Tgat { l1, l2, .. } => {
                let hop0 = &hops[0];
                let r0 = hop0.targets.len();
                let r1 = hops[1].targets.len(); // = r0 * n

                // Layer 1 runs on T1 = L0 ++ L1 with neighbors [S0 | S1].
                let ci = self.combined_tgat_inputs(hops);
                let root_feat1 = g.leaf(self.h0(&ci.t1_nodes));
                let neigh_feat1 = g.leaf(self.h0(&ci.neigh_nodes));
                let edge_feat1 = ci
                    .edge_buf
                    .map(|buf| g.leaf(Tensor::from_vec(buf, &[(r0 + r1) * n, de])));
                let batch1 = LayerBatch::new(
                    g,
                    r0 + r1,
                    n,
                    root_feat1,
                    neigh_feat1,
                    edge_feat1,
                    ci.delta_t,
                    ci.mask,
                );
                let out1 = l1.forward(g, &self.model_store, &batch1, training, seed ^ 0x1111);

                // Layer 2: roots = L0 (their layer-1 embeddings), neighbors =
                // S0 with layer-1 embeddings of the matching L1 targets.
                let root_idx: Vec<usize> = (0..r0).collect();
                let root_feat2 = g.gather_rows(out1.h, &root_idx);
                let neigh_idx: Vec<usize> = (0..r0 * n).map(|s| r0 + s).collect();
                let neigh_feat2 = g.gather_rows(out1.h, &neigh_idx);
                let edge_feat2 = (de > 0).then(|| {
                    g.leaf(Tensor::from_vec(
                        hop0.edge_buf.clone().expect("edge buf"),
                        &[r0 * n, de],
                    ))
                });
                let batch2 = LayerBatch::new(
                    g,
                    r0,
                    n,
                    root_feat2,
                    neigh_feat2,
                    edge_feat2,
                    hop0.delta_t.clone(),
                    hop0.mask.clone(),
                );
                let out2 = l2.forward(g, &self.model_store, &batch2, training, seed ^ 0x2222);
                (out2.h, vec![out1.feedback, out2.feedback])
            }
        }
    }

    fn predictor(&self) -> &EdgePredictor {
        match &self.model {
            Model::Tgat { predictor, .. } => predictor,
            Model::Mixer { predictor, .. } => predictor,
        }
    }

    /// One training iteration over `batch` (indices into the train split).
    /// Returns the loss.
    fn train_batch(
        &mut self,
        ds: &TemporalDataset,
        batch: &[usize],
        timings: &mut PhaseTimings,
    ) -> f32 {
        let b = batch.len();
        let train = ds.train_events();
        // Roots: [srcs | dsts | negative dsts], all at the edge times.
        let mut roots = Vec::with_capacity(3 * b);
        for &i in batch {
            let e: Event = train[i];
            roots.push((e.src, e.t));
        }
        for &i in batch {
            let e = train[i];
            roots.push((e.dst, e.t));
        }
        for &i in batch {
            let e = train[i];
            let neg = ds.sample_negative_dst(&mut self.rng);
            roots.push((neg, e.t));
        }

        let mut sg = Graph::new();
        let seed = self.next_seed();
        let hops = self.build_hops(&mut sg, roots, timings, seed);

        let tp = Instant::now();
        let mut mg = Graph::new();
        let (h, feedbacks) = self.forward(&mut mg, &hops, true, seed);
        let src_idx: Vec<usize> = (0..b).collect();
        let dst_idx: Vec<usize> = (b..2 * b).collect();
        let neg_idx: Vec<usize> = (2 * b..3 * b).collect();
        let h_src = mg.gather_rows(h, &src_idx);
        let h_dst = mg.gather_rows(h, &dst_idx);
        let h_neg = mg.gather_rows(h, &neg_idx);
        let pos = self
            .predictor()
            .forward(&mut mg, &self.model_store, h_src, h_dst);
        let h_src2 = mg.gather_rows(h, &src_idx);
        let neg_logits = self
            .predictor()
            .forward(&mut mg, &self.model_store, h_src2, h_neg);
        let (loss, probs) = link_prediction_loss(&mut mg, pos, neg_logits);
        let loss_val = mg.data(loss).item();
        mg.backward(loss);
        mg.flush_grads(&mut self.model_store);
        self.model_store.clip_grad_norm(5.0);
        self.model_store.adam_step(AdamConfig {
            lr: self.cfg.lr,
            ..AdamConfig::default()
        });
        timings.propagate += tp.elapsed();

        // REINFORCE update of the sampler (Algorithm 1, lines 12-13).
        if self.sampler.is_some() {
            let ta = Instant::now();
            let n = self.cfg.n_neighbors;
            let mut terms: Vec<(VarId, Vec<usize>, Vec<f32>, usize)> = Vec::new();
            match self.cfg.backbone {
                Backbone::GraphMixer => {
                    let c = coefficients(&mg, &feedbacks[0], self.cfg.cotrain);
                    if let (Some(slots), Some(lq)) = (&hops[0].slots, hops[0].log_q) {
                        terms.push((lq, slots.clone(), c, hops[0].m));
                    }
                }
                Backbone::Tgat => {
                    let r0 = hops[0].targets.len();
                    // layer-2 feedback → hop-0 policy
                    let c2 = coefficients(&mg, &feedbacks[1], self.cfg.cotrain);
                    // layer-1 feedback: first r0 targets → hop 0; rest → hop 1
                    let c1 = coefficients(&mg, &feedbacks[0], self.cfg.cotrain);
                    if let (Some(slots), Some(lq)) = (&hops[0].slots, hops[0].log_q) {
                        let mut c = c2;
                        for (k, v) in c1[..r0 * n].iter().enumerate() {
                            c[k] += v;
                        }
                        terms.push((lq, slots.clone(), c, hops[0].m));
                    }
                    if let (Some(slots), Some(lq)) = (&hops[1].slots, hops[1].log_q) {
                        terms.push((lq, slots.clone(), c1[r0 * n..].to_vec(), hops[1].m));
                    }
                }
            }
            let term_refs: Vec<SampleLossTerm<'_>> = terms
                .iter()
                .map(|(lq, slots, coeffs, m)| SampleLossTerm {
                    log_q: *lq,
                    slots,
                    coeffs,
                    m: *m,
                    n,
                })
                .collect();
            if let Some(sl) = sample_loss(&mut sg, &term_refs) {
                sg.backward(sl);
                sg.flush_grads(&mut self.sampler_store);
                self.sampler_store.clip_grad_norm(5.0);
                self.sampler_store.adam_step(AdamConfig {
                    lr: self.cfg.lr,
                    ..AdamConfig::default()
                });
            }
            timings.adaptive_sample += ta.elapsed();
        }

        // Importance score refresh (Eq. 11).
        if let Some(sel) = &mut self.selector {
            sel.update(batch, &probs);
        }

        loss_val
    }

    /// Trains for the configured number of epochs, then evaluates MRR on
    /// the validation and test splits.
    pub fn fit(&mut self, ds: &TemporalDataset) -> TrainReport {
        let mut reports = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            let report = self.train_epoch(ds, epoch);
            reports.push(report);
        }
        let val_mrr = self.evaluate(ds, ds.val_events());
        let test_mrr = self.evaluate(ds, ds.test_events());
        TrainReport {
            epochs: reports,
            val_mrr,
            test_mrr,
        }
    }

    /// Runs one training epoch and returns its report.
    pub fn train_epoch(&mut self, ds: &TemporalDataset, epoch: usize) -> EpochReport {
        let train_len = ds.train_events().len();
        let b = self.cfg.batch_size.min(train_len);
        let num_batches = train_len.div_ceil(b);
        let mut timings = PhaseTimings::default();
        let mut loss_sum = 0.0f32;
        self.finder.reset_epoch();
        self.epoch_kernel = None;
        for step in 0..num_batches {
            let batch: Vec<usize> = if let Some(sel) = &mut self.selector {
                let mut idx = sel.sample_batch(b, &mut self.rng);
                // the model still expects time-consistent negative sampling;
                // order within the batch is irrelevant
                idx.sort_unstable();
                idx
            } else {
                let start = step * b;
                (start..(start + b).min(train_len)).collect()
            };
            loss_sum += self.train_batch(ds, &batch, &mut timings);
        }
        let (cache, modeled) = match &mut self.edge_store {
            Some(s) => s.end_epoch(),
            None => (None, Duration::ZERO),
        };
        let kernel = self.epoch_kernel;
        let modeled_nf_time = match (&self.finder, kernel.as_ref()) {
            (NeighborFinder::Gpu(f), Some(k)) => f.device.simulated_time(k),
            _ => Duration::ZERO,
        };
        EpochReport {
            epoch,
            loss: loss_sum / num_batches as f32,
            timings,
            modeled_slice_time: modeled,
            cache,
            kernel,
            modeled_nf_time,
        }
    }

    /// Runs the neighbor finder plus (when adaptive) the learned sampling
    /// policy for a set of targets, returning the `m`-budget candidates and
    /// the per-slot probabilities `q` (`[targets * m]`). Returns `None` for
    /// non-adaptive variants. Used to inspect what the sampler learned.
    pub fn inspect_policy(
        &mut self,
        targets: &[(u32, f64)],
    ) -> Option<(SampledNeighbors, Vec<f32>)> {
        self.sampler.as_ref()?;
        let m = self.cfg.finder_budget;
        let policy = self
            .cfg
            .policy_override
            .unwrap_or_else(|| self.cfg.backbone.policy());
        let seed = self.next_seed();
        let cands = self.find(targets, m, policy, seed);
        let cand_buf = (self.edge_dim > 0).then(|| self.slice_edges(&cands.eids));
        let node_feats = self.node_feats.clone();
        let mut sg = Graph::inference();
        let sampler = self.sampler.as_ref().expect("adaptive sampler");
        let sel = sampler.select(
            &mut sg,
            &self.sampler_store,
            targets,
            &cands,
            node_feats.as_ref(),
            cand_buf.as_deref(),
            seed ^ 0x5E1,
        );
        Some((cands, sel.q_host))
    }

    /// Dynamic embeddings for arbitrary `(node, time)` targets (inference,
    /// deterministic for a fixed configuration and parameters).
    pub fn embed(&mut self, targets: &[(u32, f64)]) -> Tensor {
        let mut sg = Graph::inference();
        let mut timings = PhaseTimings::default();
        let seed = self.cfg.seed ^ 0xE3BED;
        let hops = self.build_hops(&mut sg, targets.to_vec(), &mut timings, seed);
        let mut mg = Graph::inference();
        let (h, _) = self.forward(&mut mg, &hops, false, seed);
        mg.data(h).clone()
    }

    /// Link-prediction scores (logits) between a source node and a list of
    /// candidate destinations at time `t` — e.g. for top-k recommendation.
    pub fn link_scores(&mut self, src: u32, t: f64, candidates: &[u32]) -> Vec<f32> {
        let mut targets = vec![(src, t)];
        targets.extend(candidates.iter().map(|&c| (c, t)));
        let emb = self.embed(&targets);
        let mut mg = Graph::inference();
        let all = mg.leaf(emb);
        let src_rep: Vec<usize> = vec![0; candidates.len()];
        let dst_idx: Vec<usize> = (1..=candidates.len()).collect();
        let h_src = mg.gather_rows(all, &src_rep);
        let h_dst = mg.gather_rows(all, &dst_idx);
        let logits = self
            .predictor()
            .forward(&mut mg, &self.model_store, h_src, h_dst);
        mg.data(logits).data().to_vec()
    }

    /// MRR over `events` with `cfg.eval_negatives` sampled negatives per
    /// positive (optionally subsampled to `cfg.eval_events`). Scoring runs
    /// on the path selected by `cfg.eval_path` — the packed fast path by
    /// default, the autograd tape as the differential oracle.
    pub fn evaluate(&mut self, ds: &TemporalDataset, events: &[Event]) -> f64 {
        mrr_from_scores(&self.eval_scores(ds, events))
    }

    /// Raw evaluation score groups `(positive logit, negative logits)` under
    /// the deterministic MRR protocol — the values [`Trainer::evaluate`]
    /// ranks. Public so the fast-vs-tape differential suite can compare
    /// scores directly rather than only the (tie-sensitive) final MRR.
    pub fn eval_scores(&mut self, ds: &TemporalDataset, events: &[Event]) -> Vec<(f32, Vec<f32>)> {
        if events.is_empty() {
            return Vec::new();
        }
        let k = self.cfg.eval_negatives;
        // Deterministic subsample: evenly spaced events.
        let picked: Vec<Event> = match self.cfg.eval_events {
            Some(cap) if events.len() > cap => {
                let stride = events.len() as f64 / cap as f64;
                (0..cap)
                    .map(|i| events[(i as f64 * stride) as usize])
                    .collect()
            }
            _ => events.to_vec(),
        };
        // Fast path: pack the live parameter store once per evaluation call
        // (the pack cost amortizes over every chunk).
        let mut packed = match self.cfg.eval_path {
            EvalPath::Fast => {
                let spec = self.model_spec();
                let built = spec
                    .build_for(&self.model_store)
                    .expect("trainer store matches its own spec");
                Some((
                    PackedModel::new(&spec, &built, &self.model_store),
                    InferCtx::new(),
                ))
            }
            EvalPath::Tape => None,
        };
        let mut groups = Vec::with_capacity(picked.len());
        for chunk in picked.chunks(self.cfg.eval_chunk) {
            let cb = chunk.len();
            // roots: [srcs | dsts | negs (cb * k)]
            let mut roots = Vec::with_capacity(2 * cb + cb * k);
            for e in chunk {
                roots.push((e.src, e.t));
            }
            for e in chunk {
                roots.push((e.dst, e.t));
            }
            let mut neg_rng = StdRng::seed_from_u64(self.cfg.seed ^ chunk[0].eid as u64);
            for e in chunk {
                for v in ds.sample_negatives(k, e.dst, &mut neg_rng) {
                    roots.push((v, e.t));
                }
            }
            let mut sg = Graph::inference();
            let mut timings = PhaseTimings::default();
            // Evaluation is deterministic for fixed config + parameters:
            // seeds derive from the chunk's first event, not training state.
            let seed = self.cfg.seed ^ 0xEA1F ^ ((chunk[0].eid as u64) << 8);
            let hops = self.build_hops(&mut sg, roots, &mut timings, seed);
            let (pos_d, neg_d) = match &mut packed {
                Some((model, ctx)) => self.packed_chunk_scores(model, ctx, &hops, cb, k),
                None => self.tape_chunk_scores(&hops, cb, k, seed),
            };
            for i in 0..cb {
                groups.push((pos_d[i], neg_d[i * k..(i + 1) * k].to_vec()));
            }
        }
        groups
    }

    /// Tape-path scoring of one evaluation chunk's support tree: the
    /// historical implementation, kept as the differential oracle.
    fn tape_chunk_scores(
        &self,
        hops: &[Hop],
        cb: usize,
        k: usize,
        seed: u64,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut mg = Graph::inference();
        let (h, _) = self.forward(&mut mg, hops, false, seed);
        let src_idx: Vec<usize> = (0..cb).collect();
        let dst_idx: Vec<usize> = (cb..2 * cb).collect();
        let h_src = mg.gather_rows(h, &src_idx);
        let h_dst = mg.gather_rows(h, &dst_idx);
        let pos = self
            .predictor()
            .forward(&mut mg, &self.model_store, h_src, h_dst);
        let src_rep: Vec<usize> = (0..cb).flat_map(|i| std::iter::repeat_n(i, k)).collect();
        let neg_rows: Vec<usize> = (0..cb * k).map(|j| 2 * cb + j).collect();
        let h_src_rep = mg.gather_rows(h, &src_rep);
        let h_negs = mg.gather_rows(h, &neg_rows);
        let negs = self
            .predictor()
            .forward(&mut mg, &self.model_store, h_src_rep, h_negs);
        (mg.data(pos).data().to_vec(), mg.data(negs).data().to_vec())
    }

    /// Fast-path scoring of one evaluation chunk's support tree: assembles
    /// the same combined hop layout `Trainer::forward` wires onto the tape
    /// — for TGAT, layer 1 runs on `T1 = L0 ++ L1` with neighbors
    /// `[S0 | S1]` — and runs the tape-free [`PackedModel`] over the
    /// [`InferCtx`] bump arena instead.
    fn packed_chunk_scores(
        &self,
        model: &PackedModel,
        ctx: &mut InferCtx,
        hops: &[Hop],
        cb: usize,
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let n = self.cfg.n_neighbors;
        ctx.reset();
        let h = match self.cfg.backbone {
            Backbone::GraphMixer => {
                let hop = &hops[0];
                let r = hop.targets.len();
                let root_nodes: Vec<u32> = hop.targets.iter().map(|&(v, _)| v).collect();
                let root = self.h0(&root_nodes);
                let neigh = self.h0(&hop.selected.nodes);
                let rs = ctx.slot_from(root.data());
                let ns = ctx.slot_from(neigh.data());
                model.forward(
                    ctx,
                    &InferArgs {
                        r0: r,
                        n,
                        root_feat: rs,
                        neigh_feat: ns,
                        edge_feat: hop.edge_buf.as_deref(),
                        delta_t: &hop.delta_t,
                        mask: &hop.mask,
                    },
                )
            }
            Backbone::Tgat => {
                let r0 = hops[0].targets.len();
                let ci = self.combined_tgat_inputs(hops);
                let root = self.h0(&ci.t1_nodes);
                let neigh = self.h0(&ci.neigh_nodes);
                let rs = ctx.slot_from(root.data());
                let ns = ctx.slot_from(neigh.data());
                model.forward(
                    ctx,
                    &InferArgs {
                        r0,
                        n,
                        root_feat: rs,
                        neigh_feat: ns,
                        edge_feat: ci.edge_buf.as_deref(),
                        delta_t: &ci.delta_t,
                        mask: &ci.mask,
                    },
                )
            }
        };
        let src_idx: Vec<usize> = (0..cb).collect();
        let dst_idx: Vec<usize> = (cb..2 * cb).collect();
        let pos = model.predict(ctx, h, &src_idx, &dst_idx);
        let pos_d = ctx.data(pos).to_vec();
        let src_rep: Vec<usize> = (0..cb).flat_map(|i| std::iter::repeat_n(i, k)).collect();
        let neg_rows: Vec<usize> = (0..cb * k).map(|j| 2 * cb + j).collect();
        let negs = model.predict(ctx, h, &src_rep, &neg_rows);
        (pos_d, ctx.data(negs).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taser_graph::synth::SynthConfig;

    fn tiny_ds() -> TemporalDataset {
        SynthConfig {
            num_src: 60,
            num_dst: 60,
            num_events: 1200,
            edge_feat_dim: 8,
            node_feat_dim: 0,
            ..SynthConfig::wikipedia()
        }
        .scale(1.0)
        .seed(3)
        .build()
    }

    fn tiny_cfg(backbone: Backbone, variant: Variant) -> TrainerConfig {
        TrainerConfig {
            backbone,
            variant,
            epochs: 1,
            batch_size: 60,
            hidden: 16,
            time_dim: 8,
            sampler_dim: 8,
            n_neighbors: 5,
            finder_budget: 10,
            eval_events: Some(20),
            eval_chunk: 10,
            eval_negatives: 9,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn mixer_baseline_trains_one_epoch() {
        let ds = tiny_ds();
        let mut t = Trainer::new(tiny_cfg(Backbone::GraphMixer, Variant::Baseline), &ds);
        let r = t.fit(&ds);
        assert_eq!(r.epochs.len(), 1);
        assert!(r.epochs[0].loss.is_finite());
        assert!(r.val_mrr > 0.0 && r.val_mrr <= 1.0);
        assert!(r.test_mrr > 0.0 && r.test_mrr <= 1.0);
    }

    #[test]
    fn tgat_taser_trains_one_epoch() {
        let ds = tiny_ds();
        let mut t = Trainer::new(tiny_cfg(Backbone::Tgat, Variant::Taser), &ds);
        let r = t.fit(&ds);
        assert!(r.epochs[0].loss.is_finite());
        assert!(r.test_mrr > 0.0);
        // adaptive phases must have been exercised
        assert!(r.epochs[0].timings.adaptive_sample > Duration::ZERO);
        assert!(r.epochs[0].timings.neighbor_find > Duration::ZERO);
        assert!(r.epochs[0].timings.propagate > Duration::ZERO);
    }

    #[test]
    fn all_variants_run_mixer() {
        let ds = tiny_ds();
        for variant in Variant::all() {
            let mut t = Trainer::new(tiny_cfg(Backbone::GraphMixer, variant), &ds);
            let report = t.train_epoch(&ds, 0);
            assert!(report.loss.is_finite(), "{}", variant.name());
            if variant.adaptive_neighbor() {
                assert!(report.timings.adaptive_sample > Duration::ZERO);
            } else {
                assert_eq!(report.timings.adaptive_sample, Duration::ZERO);
            }
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg(Backbone::GraphMixer, Variant::Baseline);
        cfg.epochs = 4;
        cfg.lr = 3e-3;
        let mut t = Trainer::new(cfg, &ds);
        let r = t.fit(&ds);
        let first = r.epochs.first().unwrap().loss;
        let last = r.epochs.last().unwrap().loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn cache_policy_reports_epochs() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg(Backbone::GraphMixer, Variant::Baseline);
        cfg.cache = CachePolicy::Dynamic {
            ratio: 0.2,
            epsilon: 0.7,
        };
        let mut t = Trainer::new(cfg, &ds);
        let rep = t.train_epoch(&ds, 0);
        let cache = rep.cache.expect("cache report");
        assert!(cache.accesses > 0);
        assert!(rep.modeled_slice_time > Duration::ZERO);
    }

    #[test]
    fn num_params_counts_sampler_only_when_adaptive() {
        let ds = tiny_ds();
        let base = Trainer::new(tiny_cfg(Backbone::GraphMixer, Variant::Baseline), &ds);
        let tas = Trainer::new(tiny_cfg(Backbone::GraphMixer, Variant::Taser), &ds);
        assert!(tas.num_params() > base.num_params());
    }

    #[test]
    fn checkpoint_roundtrip_reproduces_eval() {
        let ds = tiny_ds();
        let dir = std::env::temp_dir().join("taser_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trainer.ckpt");
        let cfg = tiny_cfg(Backbone::GraphMixer, Variant::Taser);
        let mut a = Trainer::new(cfg, &ds);
        a.train_epoch(&ds, 0);
        a.save_checkpoint(&path).unwrap();
        let mrr_a = a.evaluate(&ds, ds.val_events());
        // a fresh trainer (same architecture, untrained) → load → identical
        // evaluation, since eval seeds derive from config + event ids only
        let mut b = Trainer::new(cfg, &ds);
        b.load_checkpoint(&path).unwrap();
        let mrr_b = b.evaluate(&ds, ds.val_events());
        assert!(
            (mrr_a - mrr_b).abs() < 1e-9,
            "checkpoint eval mismatch: {mrr_a} vs {mrr_b}"
        );
    }

    #[test]
    fn eval_fast_path_matches_tape_oracle() {
        // The inference-only evaluation passes run on the packed fast path
        // by default; the autograd tape stays as the differential oracle.
        // Same trained parameters (via checkpoint) + same eval seeds ⇒ the
        // two paths must agree on every logit to within the fast-vs-tape
        // kernel budget.
        let ds = tiny_ds();
        // per-process path: parallel CI invocations must not race on it
        let dir = std::env::temp_dir().join(format!("taser_eval_path_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for backbone in [Backbone::GraphMixer, Backbone::Tgat] {
            let path = dir.join(format!("{}.ckpt", backbone.name()));
            let cfg = tiny_cfg(backbone, Variant::Taser);
            assert_eq!(cfg.eval_path, EvalPath::Fast, "fast must be the default");
            let mut fast = Trainer::new(cfg, &ds);
            fast.train_epoch(&ds, 0);
            fast.save_checkpoint(&path).unwrap();
            let mut tape = Trainer::new(
                TrainerConfig {
                    eval_path: EvalPath::Tape,
                    ..cfg
                },
                &ds,
            );
            tape.load_checkpoint(&path).unwrap();
            let gf = fast.eval_scores(&ds, ds.val_events());
            let gt = tape.eval_scores(&ds, ds.val_events());
            assert_eq!(gf.len(), gt.len(), "{}", backbone.name());
            assert!(!gf.is_empty());
            for (i, ((pf, nf), (pt, nt))) in gf.iter().zip(gt.iter()).enumerate() {
                assert!(
                    (pf - pt).abs() <= 1e-4,
                    "{} pos[{i}]: fast {pf} vs tape {pt}",
                    backbone.name()
                );
                for (j, (a, b)) in nf.iter().zip(nt.iter()).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-4,
                        "{} neg[{i}][{j}]: fast {a} vs tape {b}",
                        backbone.name()
                    );
                }
            }
            let mrr_fast = fast.evaluate(&ds, ds.val_events());
            let mrr_tape = tape.evaluate(&ds, ds.val_events());
            assert!(
                (mrr_fast - mrr_tape).abs() < 0.05,
                "{}: fast MRR {mrr_fast} vs tape {mrr_tape}",
                backbone.name()
            );
        }
    }

    #[test]
    fn export_artifact_roundtrips_and_matches_architecture() {
        let ds = tiny_ds();
        for backbone in [Backbone::GraphMixer, Backbone::Tgat] {
            let mut t = Trainer::new(tiny_cfg(backbone, Variant::Baseline), &ds);
            t.train_epoch(&ds, 0);
            let art = t.export_artifact(&ds);
            // the artifact's construction path must agree with the trainer's
            art.build().expect("spec/store mismatch");
            let mut buf = Vec::new();
            art.save(&mut buf).unwrap();
            let loaded = taser_models::ModelArtifact::load(&mut buf.as_slice()).unwrap();
            assert_eq!(loaded.spec, art.spec);
            assert_eq!(
                loaded.edge_feats.as_ref().map(|f| f.rows()),
                ds.edge_feats.as_ref().map(|f| f.rows())
            );
        }
    }

    #[test]
    fn checkpoint_rejects_wrong_architecture() {
        let ds = tiny_ds();
        let dir = std::env::temp_dir().join("taser_ckpt_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gm.ckpt");
        let gm = Trainer::new(tiny_cfg(Backbone::GraphMixer, Variant::Taser), &ds);
        gm.save_checkpoint(&path).unwrap();
        let mut tg = Trainer::new(tiny_cfg(Backbone::Tgat, Variant::Taser), &ds);
        assert!(tg.load_checkpoint(&path).is_err());
    }

    #[test]
    fn node_feature_only_dataset_trains() {
        // Flights-style: node features, no edge features (no FeatureStore).
        let ds = SynthConfig {
            num_src: 80,
            num_dst: 0,
            num_events: 1000,
            edge_feat_dim: 0,
            node_feat_dim: 6,
            ..SynthConfig::flights()
        }
        .seed(4)
        .build();
        for backbone in [Backbone::GraphMixer, Backbone::Tgat] {
            let mut t = Trainer::new(tiny_cfg(backbone, Variant::Taser), &ds);
            assert!(t.edge_store_mut().is_none(), "no edge store expected");
            let rep = t.train_epoch(&ds, 0);
            assert!(rep.loss.is_finite(), "{}", backbone.name());
        }
    }

    #[test]
    fn incremental_index_backend_is_bit_identical_to_tcsr() {
        // Same untrained parameters + same finder queries ⇒ the evaluation
        // must not be able to tell which index backend answered them.
        let ds = tiny_ds();
        let cfg = tiny_cfg(Backbone::GraphMixer, Variant::Baseline);
        let mut a = Trainer::new(cfg, &ds);
        let mut w = taser_index::IncIndexWriter::from_log(&ds.log, ds.num_nodes, 8);
        let mut b = Trainer::with_index(cfg, &ds, Box::new(w.publish()));
        let mrr_a = a.evaluate(&ds, ds.val_events());
        let mrr_b = b.evaluate(&ds, ds.val_events());
        assert_eq!(mrr_a.to_bits(), mrr_b.to_bits(), "{mrr_a} vs {mrr_b}");
        let emb_a = a.embed(&[(0, 500.0), (3, 900.0)]);
        let emb_b = b.embed(&[(0, 500.0), (3, 900.0)]);
        assert_eq!(emb_a.data(), emb_b.data());
    }

    #[test]
    fn inverse_timespan_policy_override_trains() {
        let ds = tiny_ds();
        let mut cfg = tiny_cfg(Backbone::Tgat, Variant::Baseline);
        cfg.policy_override = Some(taser_sample::SamplePolicy::inverse_timespan());
        let mut t = Trainer::new(cfg, &ds);
        let rep = t.train_epoch(&ds, 0);
        assert!(rep.loss.is_finite());
    }
}
