//! Temporal adaptive mini-batch selection (§III-A).
//!
//! Instead of consuming training edges chronologically, TASER keeps an
//! importance score `P(e)` per training edge and draws each mini-batch with
//! probability proportional to `P`. After the forward pass, scores of the
//! drawn positives are refreshed to `sigmoid(ŷ_e) + γ` (Eq. 11): confident
//! (low-noise) samples keep high probability; `γ` mixes in a uniform floor
//! so noisy-but-informative samples are still explored.

use crate::fenwick::Fenwick;
use rand::Rng;

/// Importance-weighted mini-batch sampler over the training edges.
#[derive(Clone, Debug)]
pub struct MiniBatchSelector {
    fenwick: Fenwick,
    gamma: f64,
}

impl MiniBatchSelector {
    /// Uniform initial importance over `n` training edges (the paper
    /// initializes `P` uniformly).
    pub fn new(n: usize, gamma: f64) -> Self {
        assert!(n > 0, "empty training set");
        MiniBatchSelector {
            fenwick: Fenwick::from_weights(&vec![1.0; n]),
            gamma,
        }
    }

    /// Number of training edges tracked.
    pub fn len(&self) -> usize {
        self.fenwick.len()
    }

    /// True when no edges are tracked (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.fenwick.is_empty()
    }

    /// The `γ` exploration floor.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Current importance score of edge `i`.
    pub fn score(&self, i: usize) -> f64 {
        self.fenwick.get(i)
    }

    /// Draws a batch of `b` distinct edge indices `∝ P` (without
    /// replacement).
    pub fn sample_batch(&mut self, b: usize, rng: &mut impl Rng) -> Vec<usize> {
        self.fenwick
            .sample_without_replacement(b, || rng.gen::<f64>())
    }

    /// Applies Eq. (11): `P(e) = sigmoid(ŷ_e) + γ` for each drawn positive,
    /// where `probs[j]` is the model's sigmoid output for `batch[j]`.
    pub fn update(&mut self, batch: &[usize], probs: &[f32]) {
        assert_eq!(batch.len(), probs.len(), "batch/probs length mismatch");
        for (&i, &p) in batch.iter().zip(probs.iter()) {
            let p = p.clamp(0.0, 1.0) as f64;
            self.fenwick.set(i, p + self.gamma);
        }
    }

    /// Mean importance across all edges (diagnostics).
    pub fn mean_score(&self) -> f64 {
        self.fenwick.total() / self.fenwick.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_sampling_is_uniformish() {
        let mut s = MiniBatchSelector::new(100, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = vec![0usize; 100];
        for _ in 0..500 {
            for i in s.sample_batch(10, &mut rng) {
                hits[i] += 1;
            }
        }
        // 5000 draws over 100 edges -> 50 each
        assert!(
            hits.iter().all(|&h| h > 20 && h < 90),
            "skew: {:?}",
            hits.iter().max()
        );
    }

    #[test]
    fn batches_have_distinct_indices() {
        let mut s = MiniBatchSelector::new(50, 0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let b = s.sample_batch(20, &mut rng);
        let mut u = b.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 20);
    }

    #[test]
    fn update_shifts_distribution_toward_confident() {
        let mut s = MiniBatchSelector::new(10, 0.1);
        // edge 0 very confident, edges 1..10 hopeless
        s.update(&[0], &[1.0]);
        for i in 1..10 {
            s.update(&[i], &[0.0]);
        }
        assert!((s.score(0) - 1.1).abs() < 1e-9);
        assert!((s.score(5) - 0.1).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut zero_hits = 0;
        for _ in 0..1000 {
            if s.sample_batch(1, &mut rng)[0] == 0 {
                zero_hits += 1;
            }
        }
        // P(edge 0) = 1.1 / (1.1 + 9*0.1) = 0.55
        assert!(
            (zero_hits as f64 / 1000.0 - 0.55).abs() < 0.06,
            "{zero_hits}"
        );
    }

    #[test]
    fn gamma_keeps_exploration_alive() {
        let mut s = MiniBatchSelector::new(4, 0.1);
        s.update(&[0, 1, 2, 3], &[0.0, 0.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[s.sample_batch(1, &mut rng)[0]] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "γ floor must keep all edges reachable"
        );
    }

    #[test]
    fn probs_are_clamped() {
        let mut s = MiniBatchSelector::new(2, 0.1);
        s.update(&[0], &[7.5]); // out-of-range input clamped to 1
        assert!((s.score(0) - 1.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_length_mismatch_panics() {
        let mut s = MiniBatchSelector::new(2, 0.1);
        s.update(&[0, 1], &[0.5]);
    }
}
