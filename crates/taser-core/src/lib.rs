//! # taser-core
//!
//! TASER's primary contribution: the two-fold temporal adaptive sampling
//! method and the training pipeline that co-trains it with a backbone TGNN.
//!
//! * [`minibatch`] — temporal adaptive mini-batch selection (§III-A,
//!   Eq. 11) over a [`fenwick`] tree for O(log n) weighted draws.
//! * [`encoder`] / [`decoder`] — the adaptive neighbor sampler's
//!   encoder-decoder network (§III-B, Eq. 12-21).
//! * [`sampler`] — bi-level candidate→support selection (Algorithm 1).
//! * [`cotrain`] — REINFORCE gradient estimators for co-training the
//!   sampler through the non-differentiable selection (Eq. 22-26).
//! * [`trainer`] — the end-to-end pipeline of Fig. 2, instrumented with the
//!   NF/AS/FS/PP phase timers of Table III.

pub mod cotrain;
pub mod decoder;
pub mod encoder;
pub mod fenwick;
pub mod minibatch;
pub mod sampler;
pub mod trainer;

pub use cotrain::CoTrainStrategy;
pub use decoder::{DecoderConfig, DecoderHead, NeighborDecoder};
pub use encoder::{EncoderConfig, NeighborEncoder};
pub use fenwick::Fenwick;
pub use minibatch::MiniBatchSelector;
pub use sampler::AdaptiveNeighborSampler;
pub use trainer::{
    Backbone, EpochReport, PhaseTimings, TrainReport, Trainer, TrainerConfig, Variant,
};
