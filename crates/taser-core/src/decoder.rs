//! The neighbor decoder of TASER's adaptive sampler (§III-B, Eq. 16-20).
//!
//! A 1-layer MLP-Mixer first lets every candidate's embedding attend to the
//! rest of its neighborhood (Eq. 16), then one of four predictor heads maps
//! the mixed embeddings to a per-neighborhood importance distribution
//! `q(u|v)`:
//!
//! * [`DecoderHead::Linear`] — `σ(w·Z)` (Eq. 17),
//! * [`DecoderHead::Gat`] — GAT-style additive attention (Eq. 18),
//! * [`DecoderHead::GatV2`] — GATv2's fixed-order variant (Eq. 19),
//! * [`DecoderHead::Trans`] — transformer dot-product scoring (Eq. 20).
//!
//! The paper observes each backbone prefers a different head (TGAT → GATv2,
//! GraphMixer → MLP-Mixer-friendly linear); the head is a config knob.

use taser_tensor::nn::{Linear, MixerBlock};
use taser_tensor::{Graph, ParamStore, Tensor, VarId};

/// Predictor head choices (Eq. 17-20).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecoderHead {
    /// Linear scoring head.
    Linear,
    /// GAT additive attention head.
    Gat,
    /// GATv2 head (LeakyReLU inside the projection).
    GatV2,
    /// Transformer dot-product head.
    Trans,
}

impl DecoderHead {
    /// Name used in reports/ablations.
    pub fn name(&self) -> &'static str {
        match self {
            DecoderHead::Linear => "linear",
            DecoderHead::Gat => "gat",
            DecoderHead::GatV2 => "gatv2",
            DecoderHead::Trans => "trans",
        }
    }

    /// All heads, for the ablation bench.
    pub fn all() -> [DecoderHead; 4] {
        [
            DecoderHead::Linear,
            DecoderHead::Gat,
            DecoderHead::GatV2,
            DecoderHead::Trans,
        ]
    }
}

/// Decoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct DecoderConfig {
    /// Neighbor embedding dimension `d_enc` (from the encoder).
    pub enc_dim: usize,
    /// Candidate slots per root `m` (mixer token count).
    pub m: usize,
    /// Hidden dimension of the attention heads.
    pub head_dim: usize,
    /// Which predictor head to use.
    pub head: DecoderHead,
}

enum HeadParams {
    Linear { w: Linear },
    Gat { proj: Linear, att: Linear },
    GatV2 { proj: Linear, att: Linear },
    Trans { wq: Linear, wk: Linear },
}

/// The decoder: mixer + predictor head producing `q(u|v)` per neighborhood.
pub struct NeighborDecoder {
    mixer: MixerBlock,
    head: HeadParams,
    cfg: DecoderConfig,
}

/// Decoder output: sampling distribution and its log, on the sampler tape.
pub struct DecodedPolicy {
    /// `q(u|v)` per candidate slot, `[R, m]` (softmax over valid slots).
    pub q: VarId,
    /// `log q(u|v)`, `[R, m]` — the REINFORCE term of Eq. 23.
    pub log_q: VarId,
    /// Raw pre-softmax scores `[R, m]`.
    pub scores: VarId,
}

impl NeighborDecoder {
    /// Builds the decoder; `name` scopes its parameters.
    pub fn new(store: &mut ParamStore, name: &str, cfg: DecoderConfig, seed: u64) -> Self {
        // 1-layer mixer with 0.5× token and 1× channel hidden dims — the
        // decoder scores neighborhoods, it does not need the 4× expansion
        // used for representation learning.
        let mixer = MixerBlock::new(
            store,
            &format!("{name}.mixer"),
            cfg.m,
            cfg.enc_dim,
            (cfg.m / 2).max(2),
            cfg.enc_dim,
            seed ^ 0x31,
        );
        // Every head's final scoring layer starts at zero, so the untrained
        // policy is *exactly* uniform over valid candidates (all raw scores
        // 0 → softmax uniform). A Xavier-initialized scoring layer induces
        // a fixed, arbitrary skew before any training signal arrives —
        // observed 8x between boundary and interior slots — which breaks
        // the "untrained ≈ uniform" exploration assumption the γ-floor of
        // Eq. 11 builds on. Gradients still flow on step one: dL/dW of the
        // zero layer depends on its inputs, not on W (see EXPERIMENTS.md,
        // "Decoder head initialization").
        let head = match cfg.head {
            DecoderHead::Linear => HeadParams::Linear {
                w: Linear::zeros(store, &format!("{name}.lin"), cfg.enc_dim, 1, true),
            },
            DecoderHead::Gat => HeadParams::Gat {
                proj: Linear::new(
                    store,
                    &format!("{name}.gproj"),
                    cfg.enc_dim,
                    cfg.head_dim,
                    seed ^ 0x33,
                ),
                att: Linear::zeros(store, &format!("{name}.gatt"), 2 * cfg.head_dim, 1, false),
            },
            DecoderHead::GatV2 => HeadParams::GatV2 {
                proj: Linear::new(
                    store,
                    &format!("{name}.g2proj"),
                    2 * cfg.enc_dim,
                    cfg.head_dim,
                    seed ^ 0x35,
                ),
                att: Linear::zeros(store, &format!("{name}.g2att"), cfg.head_dim, 1, false),
            },
            DecoderHead::Trans => HeadParams::Trans {
                // zeroing one side of the bilinear form zeroes every score;
                // wq recovers on the first step (its gradient sees wk's
                // nonzero projections), after which wk trains normally
                wq: Linear::zeros(
                    store,
                    &format!("{name}.tq"),
                    cfg.enc_dim,
                    cfg.head_dim,
                    true,
                ),
                wk: Linear::new(
                    store,
                    &format!("{name}.tk"),
                    cfg.enc_dim,
                    cfg.head_dim,
                    seed ^ 0x38,
                ),
            },
        };
        NeighborDecoder { mixer, head, cfg }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.cfg
    }

    /// Computes `q(·|v)` for `R` neighborhoods.
    ///
    /// * `z` — candidate embeddings `[R*m, d_enc]`,
    /// * `z_root` — root embeddings `[R, d_enc]`,
    /// * `mask` — candidate validity, `[R*m]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        z: VarId,
        z_root: VarId,
        mask: &[bool],
    ) -> DecodedPolicy {
        let m = self.cfg.m;
        let d = self.cfg.enc_dim;
        let r = g.data(z).rows() / m;
        assert_eq!(g.data(z).last_dim(), d, "encoder dim mismatch");
        assert_eq!(mask.len(), r * m, "mask length");

        // Eq. 16: neighborhood-correlated embeddings via the mixer.
        let tokens = g.reshape(z, &[r, m, d]);
        let mixed3 = self.mixer.forward(g, store, tokens);
        let mixed = g.reshape(mixed3, &[r * m, d]);

        // Predictor head → raw scores [R, m].
        let raw = match &self.head {
            HeadParams::Linear { w } => {
                let s = w.forward(g, store, mixed);
                g.reshape(s, &[r, m])
            }
            HeadParams::Gat { proj, att } => {
                // LeakyReLU(aᵀ [W z_u || W z_v])   (Eq. 18)
                let zu = proj.forward(g, store, mixed);
                let zv = proj.forward(g, store, z_root);
                let idx: Vec<usize> = (0..r * m).map(|s| s / m).collect();
                let zv_rep = g.gather_rows(zv, &idx);
                let cat = g.concat_cols(&[zu, zv_rep]);
                let s = att.forward(g, store, cat);
                let s = g.leaky_relu(s, 0.2);
                g.reshape(s, &[r, m])
            }
            HeadParams::GatV2 { proj, att } => {
                // aᵀ LeakyReLU(W [z_u || z_v])   (Eq. 19)
                let idx: Vec<usize> = (0..r * m).map(|s| s / m).collect();
                let zv_rep = g.gather_rows(z_root, &idx);
                let cat = g.concat_cols(&[mixed, zv_rep]);
                let h = proj.forward(g, store, cat);
                let h = g.leaky_relu(h, 0.2);
                let s = att.forward(g, store, h);
                g.reshape(s, &[r, m])
            }
            HeadParams::Trans { wq, wk } => {
                // (W_t z_v)(W'_t Z)ᵀ / sqrt(m)   (Eq. 20)
                let q = wq.forward(g, store, z_root); // [R, dh]
                let k = wk.forward(g, store, mixed); // [R*m, dh]
                let q3 = g.reshape(q, &[r, 1, self.cfg.head_dim]);
                let k3 = g.reshape(k, &[r, m, self.cfg.head_dim]);
                let s = g.bmm(q3, k3, true); // [R, 1, m]
                let s = g.mul_scalar(s, 1.0 / (m as f32).sqrt());
                g.reshape(s, &[r, m])
            }
        };

        // Mask invalid slots, then normalize.
        let bias: Vec<f32> = mask.iter().map(|&v| if v { 0.0 } else { -1e9 }).collect();
        let bias_leaf = g.leaf(Tensor::from_vec(bias, &[r, m]));
        let scores = g.add(raw, bias_leaf);
        let q = g.softmax(scores);
        let log_q = g.log_softmax(scores);
        DecodedPolicy { q, log_q, scores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taser_tensor::init;

    fn run_head(head: DecoderHead) -> (Graph, DecodedPolicy, ParamStore) {
        let mut store = ParamStore::new();
        let cfg = DecoderConfig {
            enc_dim: 12,
            m: 4,
            head_dim: 8,
            head,
        };
        let dec = NeighborDecoder::new(&mut store, "dec", cfg, 3);
        let mut g = Graph::new();
        let z = g.leaf(init::uniform(&[3 * 4, 12], -1.0, 1.0, 1));
        let zr = g.leaf(init::uniform(&[3, 12], -1.0, 1.0, 2));
        let mut mask = vec![true; 12];
        mask[7] = false; // root 1 slot 3 invalid
        let out = dec.forward(&mut g, &store, z, zr, &mask);
        (g, out, store)
    }

    #[test]
    fn all_heads_produce_distributions() {
        for head in DecoderHead::all() {
            let (g, out, _) = run_head(head);
            let q = g.data(out.q);
            assert_eq!(q.shape(), &[3, 4], "{}", head.name());
            for i in 0..3 {
                let row: f32 = (0..4).map(|j| q.at2(i, j)).sum();
                assert!(
                    (row - 1.0).abs() < 1e-5,
                    "{} row {i} sums to {row}",
                    head.name()
                );
            }
            // masked slot carries ~zero probability
            assert!(
                q.at2(1, 3) < 1e-6,
                "{} leaked mass to masked slot",
                head.name()
            );
        }
    }

    #[test]
    fn untrained_policy_is_exactly_uniform() {
        // zero-init scoring layers ⇒ all raw scores 0 ⇒ softmax uniform
        // over valid slots, for every head
        for head in DecoderHead::all() {
            let (g, out, _) = run_head(head);
            let q = g.data(out.q);
            for i in 0..3 {
                let valid = if i == 1 { 3.0 } else { 4.0 };
                for j in 0..4 {
                    if i == 1 && j == 3 {
                        continue; // masked
                    }
                    assert!(
                        (q.at2(i, j) - 1.0 / valid).abs() < 1e-6,
                        "{} q({i},{j}) = {} != 1/{valid}",
                        head.name(),
                        q.at2(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn log_q_consistent_with_q() {
        let (g, out, _) = run_head(DecoderHead::Trans);
        let q = g.data(out.q);
        let lq = g.data(out.log_q);
        for s in 0..8 {
            // skip the masked slot where log q ~ -inf
            if q.data()[s] > 1e-6 {
                assert!((lq.data()[s].exp() - q.data()[s]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradients_flow_through_every_head() {
        for head in DecoderHead::all() {
            let mut store = ParamStore::new();
            let cfg = DecoderConfig {
                enc_dim: 12,
                m: 4,
                head_dim: 8,
                head,
            };
            let dec = NeighborDecoder::new(&mut store, "dec", cfg, 3);
            let mut g = Graph::new();
            let z = g.leaf(init::uniform(&[8, 12], -1.0, 1.0, 1));
            let zr = g.leaf(init::uniform(&[2, 12], -1.0, 1.0, 2));
            let out = dec.forward(&mut g, &store, z, zr, &[true; 8]);
            // REINFORCE-style objective: weighted sum of log q
            let w = g.leaf(init::uniform(&[2, 4], -1.0, 1.0, 5));
            let prod = g.mul(out.log_q, w);
            let loss = g.sum_all(prod);
            g.backward(loss);
            g.flush_grads(&mut store);
            assert!(
                store.grad_norm_total() > 0.0,
                "{} got no gradient",
                head.name()
            );
        }
    }

    #[test]
    fn policy_is_learnable_toward_target() {
        // train the linear head so that q concentrates on slot 0
        use taser_tensor::AdamConfig;
        let mut store = ParamStore::new();
        let cfg = DecoderConfig {
            enc_dim: 6,
            m: 3,
            head_dim: 4,
            head: DecoderHead::Linear,
        };
        let dec = NeighborDecoder::new(&mut store, "dec", cfg, 7);
        let zdata = init::uniform(&[3, 6], -1.0, 1.0, 11); // one root, 3 candidates
        let zrdata = init::uniform(&[1, 6], -1.0, 1.0, 12);
        let adam = AdamConfig {
            lr: 0.02,
            ..AdamConfig::default()
        };
        let mut final_q0 = 0.0;
        for _ in 0..200 {
            let mut g = Graph::new();
            let z = g.leaf(zdata.clone());
            let zr = g.leaf(zrdata.clone());
            let out = dec.forward(&mut g, &store, z, zr, &[true, true, true]);
            final_q0 = g.data(out.q).data()[0];
            // maximize log q(slot 0): coefficients (-1, 0, 0)
            let c = g.leaf(Tensor::from_vec(vec![-1.0, 0.0, 0.0], &[1, 3]));
            let prod = g.mul(out.log_q, c);
            let loss = g.sum_all(prod);
            g.backward(loss);
            g.flush_grads(&mut store);
            store.adam_step(adam);
        }
        assert!(
            final_q0 > 0.9,
            "policy failed to concentrate: q0 = {final_q0}"
        );
    }
}
