//! Temporal adaptive neighbor sampling: encoder + decoder + Plackett-Luce
//! selection of `n` supporting neighbors out of `m` candidates (§III-B,
//! Algorithm 1 lines 5-6).

use crate::decoder::{DecodedPolicy, DecoderConfig, NeighborDecoder};
use crate::encoder::{EncoderConfig, NeighborEncoder};
use taser_graph::feats::FeatureMatrix;
use taser_sample::rng::{counter_rng, mix};
use taser_sample::SampledNeighbors;
use taser_tensor::{Graph, ParamStore, VarId};

/// Slot marker for unfilled selections.
pub const NO_SLOT: usize = usize::MAX;

/// The bi-level adaptive sampler: scope of `m` candidates from the neighbor
/// finder, adaptively narrowed to `n` supporting neighbors (PASS-style
/// two-step sampling, §III).
pub struct AdaptiveNeighborSampler {
    /// The neighbor encoder (Eq. 12-15).
    pub encoder: NeighborEncoder,
    /// The neighbor decoder (Eq. 16-20).
    pub decoder: NeighborDecoder,
    n: usize,
}

/// Result of one adaptive selection pass.
pub struct Selection {
    /// The `n`-budget supporting neighborhoods handed to the TGNN.
    pub selected: SampledNeighbors,
    /// Candidate slot chosen for each selection, `[R*n]` (`NO_SLOT` = pad).
    pub slots: Vec<usize>,
    /// The sampling policy vars on the sampler tape (for co-training).
    pub policy: DecodedPolicy,
    /// Host copy of `q`, `[R*m]`.
    pub q_host: Vec<f32>,
}

impl AdaptiveNeighborSampler {
    /// Builds encoder + decoder inside `store`. `n` is the number of
    /// supporting neighbors selected per root.
    pub fn new(
        store: &mut ParamStore,
        enc_cfg: EncoderConfig,
        dec_cfg: DecoderConfig,
        n: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            enc_cfg.enc_dim(),
            dec_cfg.enc_dim,
            "encoder/decoder dim mismatch"
        );
        assert_eq!(enc_cfg.m, dec_cfg.m, "encoder/decoder m mismatch");
        assert!(
            n <= enc_cfg.m,
            "cannot select n={n} from m={} candidates",
            enc_cfg.m
        );
        AdaptiveNeighborSampler {
            encoder: NeighborEncoder::new(store, "sampler.enc", enc_cfg, seed),
            decoder: NeighborDecoder::new(store, "sampler.dec", dec_cfg, seed ^ 0x77),
            n,
        }
    }

    /// Selected supporting neighbors per root.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Candidate budget `m`.
    pub fn m(&self) -> usize {
        self.encoder.config().m
    }

    /// Runs encode → decode → sample-without-replacement.
    ///
    /// Selection uses Gumbel-top-n over `log q`, which draws an ordered
    /// sample from the Plackett-Luce distribution induced by `q` — the
    /// standard reparameterization of sequential sampling without
    /// replacement. `seed` makes the draw deterministic.
    #[allow(clippy::too_many_arguments)]
    pub fn select(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        roots: &[(u32, f64)],
        candidates: &SampledNeighbors,
        node_feats: Option<&FeatureMatrix>,
        edge_buf: Option<&[f32]>,
        seed: u64,
    ) -> Selection {
        let r = roots.len();
        let m = self.m();
        let n = self.n;

        let enc = self
            .encoder
            .encode(g, store, roots, candidates, node_feats, edge_buf);
        let policy = self.decoder.forward(g, store, enc.z, enc.z_root, &enc.mask);
        let q_host = g.data(policy.q).data().to_vec();
        let log_q = g.data(policy.log_q).data();

        let mut selected = SampledNeighbors::empty(r, n);
        let mut slots = vec![NO_SLOT; r * n];
        for i in 0..r {
            // Gumbel keys over valid slots
            let mut keys: Vec<(f32, usize)> = (0..candidates.counts[i])
                .filter(|&j| enc.mask[i * m + j])
                .map(|j| {
                    let raw = counter_rng(seed, i as u64, j as u64, 0);
                    let u = ((mix(raw) >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                    let gumbel = -(-(u.ln())).ln();
                    (log_q[i * m + j] + gumbel as f32, j)
                })
                .collect();
            keys.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let k = keys.len().min(n);
            for (out_j, &(_, slot)) in keys.iter().take(k).enumerate() {
                let s = i * m + slot;
                let d = i * n + out_j;
                selected.nodes[d] = candidates.nodes[s];
                selected.times[d] = candidates.times[s];
                selected.eids[d] = candidates.eids[s];
                slots[d] = slot;
            }
            selected.counts[i] = k;
        }

        Selection {
            selected,
            slots,
            policy,
            q_host,
        }
    }
}

/// Builds the REINFORCE sample loss `L_sample = Σ c_j · log q(u_j)` from one
/// or more `(log_q, slots, coeffs)` terms (Eq. 25-26 freeze everything but
/// the log-probability). Returns `None` when no valid term contributes.
pub struct SampleLossTerm<'a> {
    /// `log q` var, `[R, m]`, on the sampler tape.
    pub log_q: VarId,
    /// Candidate slot per selection, `[R*n]` (`NO_SLOT` skipped).
    pub slots: &'a [usize],
    /// Frozen coefficient per selection, `[R*n]`.
    pub coeffs: &'a [f32],
    /// Candidate budget of this term.
    pub m: usize,
    /// Selections per root of this term.
    pub n: usize,
}

/// Assembles the total sample loss on the sampler tape.
pub fn sample_loss(g: &mut Graph, terms: &[SampleLossTerm<'_>]) -> Option<VarId> {
    let mut total: Option<VarId> = None;
    for term in terms {
        let r = g.data(term.log_q).rows();
        debug_assert_eq!(term.slots.len(), r * term.n);
        let mut idx = Vec::new();
        let mut cs = Vec::new();
        for (s, (&slot, &c)) in term.slots.iter().zip(term.coeffs.iter()).enumerate() {
            if slot == NO_SLOT || c == 0.0 {
                continue;
            }
            let root = s / term.n;
            idx.push(root * term.m + slot);
            cs.push(c);
        }
        if idx.is_empty() {
            continue;
        }
        let flat = g.reshape(term.log_q, &[r * term.m, 1]);
        let picked = g.gather_rows(flat, &idx);
        let k = cs.len();
        let coeff_leaf = g.leaf(taser_tensor::Tensor::from_vec(cs, &[k]));
        let weighted = g.scale_rows(picked, coeff_leaf);
        let s = g.sum_all(weighted);
        total = Some(match total {
            Some(t) => g.add(t, s),
            None => s,
        });
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::DecoderHead;
    use taser_sample::PAD;

    fn candidates(r: usize, m: usize, count: usize) -> SampledNeighbors {
        let mut c = SampledNeighbors::empty(r, m);
        for i in 0..r {
            for j in 0..count {
                let s = i * m + j;
                c.nodes[s] = j as u32;
                c.times[s] = 100.0 - j as f64;
                c.eids[s] = s as u32;
            }
            c.counts[i] = count;
        }
        c
    }

    fn build(m: usize, n: usize) -> (AdaptiveNeighborSampler, ParamStore) {
        let mut store = ParamStore::new();
        let enc = EncoderConfig::balanced(8, m, 0, 4);
        let dec = DecoderConfig {
            enc_dim: enc.enc_dim(),
            m,
            head_dim: 8,
            head: DecoderHead::Linear,
        };
        let s = AdaptiveNeighborSampler::new(&mut store, enc, dec, n, 5);
        (s, store)
    }

    #[test]
    fn selects_n_distinct_slots() {
        let (s, store) = build(8, 3);
        let cands = candidates(2, 8, 8);
        let buf = vec![0.1f32; 2 * 8 * 4];
        let mut g = Graph::new();
        let sel = s.select(
            &mut g,
            &store,
            &[(0, 200.0), (1, 150.0)],
            &cands,
            None,
            Some(&buf),
            3,
        );
        assert_eq!(sel.selected.counts, vec![3, 3]);
        for i in 0..2 {
            let mut sl: Vec<usize> = (0..3).map(|j| sel.slots[i * 3 + j]).collect();
            sl.sort_unstable();
            sl.dedup();
            assert_eq!(sl.len(), 3, "duplicate slots selected");
            assert!(sl.iter().all(|&x| x < 8));
        }
        assert_eq!(sel.q_host.len(), 16);
    }

    #[test]
    fn short_neighborhood_takes_all() {
        let (s, store) = build(8, 5);
        let cands = candidates(1, 8, 2);
        let buf = vec![0.0f32; 8 * 4];
        let mut g = Graph::new();
        let sel = s.select(&mut g, &store, &[(0, 200.0)], &cands, None, Some(&buf), 1);
        assert_eq!(sel.selected.counts[0], 2);
        assert_eq!(sel.slots[2], NO_SLOT);
        assert_eq!(sel.selected.nodes[2], PAD);
    }

    #[test]
    fn deterministic_by_seed() {
        let (s, store) = build(10, 4);
        let cands = candidates(3, 10, 10);
        let buf = vec![0.2f32; 3 * 10 * 4];
        let run = |seed| {
            let mut g = Graph::new();
            s.select(
                &mut g,
                &store,
                &[(0, 99.0), (1, 98.0), (2, 97.0)],
                &cands,
                None,
                Some(&buf),
                seed,
            )
            .slots
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn selection_follows_policy_distribution() {
        // With an untrained (near-uniform) policy, every slot should get
        // picked sometimes; selection respects q's support.
        let (s, store) = build(6, 2);
        let cands = candidates(1, 6, 6);
        let buf = vec![0.3f32; 6 * 4];
        let mut hit = [0usize; 6];
        for seed in 0..300 {
            let mut g = Graph::new();
            let sel = s.select(&mut g, &store, &[(0, 50.0)], &cands, None, Some(&buf), seed);
            for j in 0..2 {
                hit[sel.slots[j]] += 1;
            }
        }
        assert!(hit.iter().all(|&h| h > 20), "hits {hit:?}");
    }

    #[test]
    fn sample_loss_combines_terms() {
        let (s, store) = build(6, 2);
        let cands = candidates(2, 6, 6);
        let buf = vec![0.1f32; 2 * 6 * 4];
        let mut g = Graph::new();
        let sel = s.select(
            &mut g,
            &store,
            &[(0, 99.0), (1, 88.0)],
            &cands,
            None,
            Some(&buf),
            11,
        );
        let coeffs = vec![0.5f32, -0.25, 1.0, 0.0];
        let loss = sample_loss(
            &mut g,
            &[SampleLossTerm {
                log_q: sel.policy.log_q,
                slots: &sel.slots,
                coeffs: &coeffs,
                m: 6,
                n: 2,
            }],
        )
        .expect("non-empty loss");
        // manual: sum over selections with non-zero coeff of c * log q
        let lq = g.data(sel.policy.log_q).clone();
        let want: f32 = [(0usize, 0.5f32), (1, -0.25), (2, 1.0)]
            .iter()
            .map(|&(k, c)| {
                let root = k / 2;
                c * lq.data()[root * 6 + sel.slots[k]]
            })
            .sum();
        assert!((g.data(loss).item() - want).abs() < 1e-5);
        // and it back-propagates into the sampler parameters
        let mut store2 = store;
        g.backward(loss);
        g.flush_grads(&mut store2);
        assert!(store2.grad_norm_total() > 0.0);
    }

    #[test]
    fn sample_loss_empty_terms_none() {
        let mut g = Graph::new();
        assert!(sample_loss(&mut g, &[]).is_none());
        // all-pad term also collapses to None
        let lq = g.leaf(taser_tensor::Tensor::zeros(&[1, 4]));
        let slots = vec![NO_SLOT; 2];
        let coeffs = vec![1.0f32; 2];
        assert!(sample_loss(
            &mut g,
            &[SampleLossTerm {
                log_q: lq,
                slots: &slots,
                coeffs: &coeffs,
                m: 4,
                n: 2
            }]
        )
        .is_none());
    }
}
