//! Parameter storage and optimizers.
//!
//! Parameters live outside the per-iteration tape in a [`ParamStore`]. Each
//! training step: bind params onto a [`crate::Graph`] with `Graph::param`,
//! run forward/backward, `Graph::flush_grads` into the store, then call
//! [`ParamStore::adam_step`] (TASER uses Adam throughout, §III-D).

use crate::tensor::Tensor;
use std::io::{self, Read, Write};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ParamId(usize);

/// Hyperparameters for [`ParamStore::adam_step`].
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate (paper default: 1e-4).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Named parameter tensors plus their gradients and Adam moments.
#[derive(Clone, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    names: Vec<String>,
    step: u64,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let shape = value.shape().to_vec();
        self.grads.push(Tensor::zeros(&shape));
        self.m.push(Tensor::zeros(&shape));
        self.v.push(Tensor::zeros(&shape));
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access (e.g. for manual re-initialization).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn total_elems(&self) -> usize {
        self.values.iter().map(|t| t.numel()).sum()
    }

    /// Adds `g` into the stored gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.grads[id.0].add_assign(g);
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grads {
            g.fill(0.0);
        }
    }

    /// Global gradient-norm clipping; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f32 = self
            .grads
            .iter()
            .map(|g| g.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        if total > max_norm && total > 0.0 {
            let scale = max_norm / total;
            for g in &mut self.grads {
                g.scale_assign(scale);
            }
        }
        total
    }

    /// One Adam step over every parameter, using accumulated gradients.
    /// Gradients are cleared afterwards.
    pub fn adam_step(&mut self, cfg: AdamConfig) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        for i in 0..self.values.len() {
            let g = &self.grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let val = &mut self.values[i];
            for j in 0..g.numel() {
                let mut gj = g.data()[j];
                if cfg.weight_decay > 0.0 {
                    // decoupled decay applied directly to the weight below
                }
                if !gj.is_finite() {
                    gj = 0.0;
                }
                let mj = cfg.beta1 * m.data()[j] + (1.0 - cfg.beta1) * gj;
                let vj = cfg.beta2 * v.data()[j] + (1.0 - cfg.beta2) * gj * gj;
                m.data_mut()[j] = mj;
                v.data_mut()[j] = vj;
                let mhat = mj / bc1;
                let vhat = vj / bc2;
                let mut w = val.data()[j];
                if cfg.weight_decay > 0.0 {
                    w -= cfg.lr * cfg.weight_decay * w;
                }
                val.data_mut()[j] = w - cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        }
        self.zero_grad();
    }

    /// Plain SGD step (used by tests and ablations). Clears gradients.
    pub fn sgd_step(&mut self, lr: f32) {
        for i in 0..self.values.len() {
            let g = self.grads[i].clone();
            self.values[i].axpy(-lr, &g);
        }
        self.zero_grad();
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// L2 norm of all gradients combined — a cheap "did anything backprop"
    /// check used by tests.
    pub fn grad_norm_total(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|&x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Serializes the full store (values, Adam moments, step counter) into a
    /// compact binary stream. Format: `TASERPS1` magic, step, param count,
    /// then per parameter: name, shape, values, first and second moments.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(b"TASERPS1")?;
        w.write_all(&self.step.to_le_bytes())?;
        w.write_all(&(self.values.len() as u32).to_le_bytes())?;
        for i in 0..self.values.len() {
            let name = self.names[i].as_bytes();
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name)?;
            let shape = self.values[i].shape();
            w.write_all(&(shape.len() as u32).to_le_bytes())?;
            for &d in shape {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for t in [&self.values[i], &self.m[i], &self.v[i]] {
                for &x in t.data() {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a store written by [`ParamStore::save`].
    pub fn load(r: &mut impl Read) -> io::Result<ParamStore> {
        fn bad(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, msg)
        }
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"TASERPS1" {
            return Err(bad("not a TASER parameter store"));
        }
        let mut u64b = [0u8; 8];
        r.read_exact(&mut u64b)?;
        let step = u64::from_le_bytes(u64b);
        let mut u32b = [0u8; 4];
        r.read_exact(&mut u32b)?;
        let count = u32::from_le_bytes(u32b) as usize;
        let mut store = ParamStore {
            step,
            ..ParamStore::default()
        };
        for _ in 0..count {
            r.read_exact(&mut u32b)?;
            let name_len = u32::from_le_bytes(u32b) as usize;
            if name_len > 1 << 16 {
                return Err(bad("implausible name length"));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("parameter name not UTF-8"))?;
            r.read_exact(&mut u32b)?;
            let rank = u32::from_le_bytes(u32b) as usize;
            if rank == 0 || rank > 8 {
                return Err(bad("implausible tensor rank"));
            }
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                r.read_exact(&mut u64b)?;
                shape.push(u64::from_le_bytes(u64b) as usize);
            }
            let numel: usize = shape.iter().product();
            if numel > 1 << 28 {
                return Err(bad("implausible tensor size"));
            }
            let mut read_tensor = |shape: &[usize]| -> io::Result<Tensor> {
                let mut data = vec![0f32; numel];
                let mut f32b = [0u8; 4];
                for x in &mut data {
                    r.read_exact(&mut f32b)?;
                    *x = f32::from_le_bytes(f32b);
                }
                Ok(Tensor::from_vec(data, shape))
            };
            let value = read_tensor(&shape)?;
            let m = read_tensor(&shape)?;
            let v = read_tensor(&shape)?;
            store.grads.push(Tensor::zeros(&shape));
            store.values.push(value);
            store.m.push(m);
            store.v.push(v);
            store.names.push(name);
        }
        Ok(store)
    }

    /// True when `other` has the same parameters (names and shapes) — the
    /// precondition for loading a checkpoint into an existing architecture.
    pub fn compatible_with(&self, other: &ParamStore) -> bool {
        self.names == other.names
            && self
                .values
                .iter()
                .zip(other.values.iter())
                .all(|(a, b)| a.shape() == b.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn add_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::ones(&[2, 2]));
        assert_eq!(s.value(id).sum(), 4.0);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_elems(), 4);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        // minimize (w - 3)^2 from w=0
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::scalar(0.0));
        for _ in 0..200 {
            let mut g = Graph::new();
            let w = g.param(&s, id);
            let shifted = g.add_scalar(w, -3.0);
            let loss = g.square(shifted);
            g.backward(loss);
            g.flush_grads(&mut s);
            s.sgd_step(0.1);
        }
        assert!((s.value(id).item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::scalar(-2.0));
        let cfg = AdamConfig {
            lr: 0.1,
            ..AdamConfig::default()
        };
        for _ in 0..300 {
            let mut g = Graph::new();
            let w = g.param(&s, id);
            let shifted = g.add_scalar(w, -1.0);
            let loss = g.square(shifted);
            g.backward(loss);
            g.flush_grads(&mut s);
            s.adam_step(cfg);
        }
        assert!(
            (s.value(id).item() - 1.0).abs() < 1e-2,
            "got {}",
            s.value(id).item()
        );
    }

    #[test]
    fn adam_ignores_nan_grads() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::scalar(1.0));
        s.accumulate_grad(id, &Tensor::scalar(f32::NAN));
        s.adam_step(AdamConfig::default());
        assert!(s.value(id).item().is_finite());
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(&[2]));
        s.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let norm = s.clip_grad_norm(1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((s.grad(id).norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_grad_clears() {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(&[2]));
        s.accumulate_grad(id, &Tensor::ones(&[2]));
        s.zero_grad();
        assert_eq!(s.grad(id).sum(), 0.0);
    }

    #[test]
    fn save_load_roundtrip_preserves_state() {
        let mut s = ParamStore::new();
        let a = s.add(
            "layer.w",
            Tensor::from_vec(vec![1.5, -2.5, 0.25, 9.0], &[2, 2]),
        );
        let b = s.add("layer.b", Tensor::from_vec(vec![0.1, 0.2], &[2]));
        // create optimizer state
        s.accumulate_grad(a, &Tensor::ones(&[2, 2]));
        s.accumulate_grad(b, &Tensor::ones(&[2]));
        s.adam_step(AdamConfig::default());
        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let loaded = ParamStore::load(&mut buf.as_slice()).unwrap();
        assert!(loaded.compatible_with(&s));
        assert_eq!(loaded.steps(), s.steps());
        assert!(loaded.value(a).allclose(s.value(a), 0.0));
        assert!(loaded.value(b).allclose(s.value(b), 0.0));
        // moments restored too: one more identical step matches exactly
        let mut s2 = loaded;
        s.accumulate_grad(a, &Tensor::ones(&[2, 2]));
        s2.accumulate_grad(a, &Tensor::ones(&[2, 2]));
        s.adam_step(AdamConfig::default());
        s2.adam_step(AdamConfig::default());
        assert!(s2.value(a).allclose(s.value(a), 0.0));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(ParamStore::load(&mut &b"NOTASTORE"[..]).is_err());
        assert!(
            ParamStore::load(&mut &b"TASERPS1"[..]).is_err(),
            "truncated"
        );
    }

    #[test]
    fn compatibility_check() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::zeros(&[2, 2]));
        let mut b = ParamStore::new();
        b.add("w", Tensor::zeros(&[2, 2]));
        assert!(a.compatible_with(&b));
        let mut c = ParamStore::new();
        c.add("w", Tensor::zeros(&[2, 3]));
        assert!(!a.compatible_with(&c), "shape mismatch must be caught");
        let mut d = ParamStore::new();
        d.add("w2", Tensor::zeros(&[2, 2]));
        assert!(!a.compatible_with(&d), "name mismatch must be caught");
    }
}
