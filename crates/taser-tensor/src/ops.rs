//! Raw compute kernels over [`Tensor`]s.
//!
//! Everything here is a pure function with no autograd bookkeeping; the tape
//! in [`crate::graph`] composes these into differentiable ops. Matrix products
//! parallelize over output rows with rayon, which is where essentially all of
//! the training time goes.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Minimum number of output rows before a matmul fans out to rayon.
/// Below this the parallel dispatch overhead dominates. Retuned from 32
/// to 16 for the persistent pool (PR 5): dispatch is now a queue push
/// (~1µs) instead of a thread spawn (~tens of µs), so parallelism pays
/// off at half the old row count (see EXPERIMENTS.md, "Pool dispatch
/// overhead and retuned chunk floors").
const PAR_ROW_THRESHOLD: usize = 16;

/// Register-tile height of the packed matmul microkernel: rows of `A`
/// processed together so each loaded panel column is reused `MR` times.
pub const MR: usize = 4;

/// Default packed-panel width. 8 f32 lanes = one AVX2 register per
/// accumulator row; the `infer_forward` harness sweeps 4/8/16
/// (see EXPERIMENTS.md, "Blocking-parameter sweep").
pub const DEFAULT_PANEL: usize = 8;

/// A matrix packed into `NR`-wide column panels for the register-tiled
/// matmul kernels.
///
/// Panel `j` stores columns `[j*nr, j*nr+nr)` contiguously, `k`-major:
/// `panel[p*nr + jj] = B[p][j*nr + jj]` (zero-padded past column `m`). The
/// kernel streams one panel while keeping an `MR`×`nr` accumulator tile in
/// registers, so every `B` value loaded is used `MR` times and every `A`
/// value `nr` times. Weight matrices pack **once at model load** and are
/// reused across every inference batch; the training-path `matmul` packs
/// per call (an `O(k·m)` copy amortized over `n` output rows).
#[derive(Clone, Debug)]
pub struct PackedMatrix {
    k: usize,
    m: usize,
    nr: usize,
    data: Vec<f32>,
}

impl PackedMatrix {
    /// Packs a row-major `B (k×m)` into `nr`-wide panels.
    /// `nr` must be 4, 8, or 16 (the instantiated kernel widths).
    pub fn pack(b: &[f32], k: usize, m: usize, nr: usize) -> Self {
        assert!(matches!(nr, 4 | 8 | 16), "unsupported panel width {nr}");
        assert_eq!(b.len(), k * m, "pack: data/shape mismatch");
        let npanels = m.div_ceil(nr).max(1);
        let mut data = vec![0.0f32; npanels * k * nr];
        for pj in 0..npanels {
            let j0 = pj * nr;
            let w = m.saturating_sub(j0).min(nr);
            let panel = &mut data[pj * k * nr..(pj + 1) * k * nr];
            for p in 0..k {
                for jj in 0..w {
                    panel[p * nr + jj] = b[p * m + j0 + jj];
                }
            }
        }
        PackedMatrix { k, m, nr, data }
    }

    /// Packs `Bᵀ` where `B (m×k)` is row-major — i.e. the packed logical
    /// matrix is `(k×m)` with `B'[p][j] = B[j][p]`. Lets [`matmul_bt`] share
    /// the forward kernel (packing performs the transpose).
    pub fn pack_bt(b: &[f32], m: usize, k: usize, nr: usize) -> Self {
        assert!(matches!(nr, 4 | 8 | 16), "unsupported panel width {nr}");
        assert_eq!(b.len(), k * m, "pack_bt: data/shape mismatch");
        let npanels = m.div_ceil(nr).max(1);
        let mut data = vec![0.0f32; npanels * k * nr];
        for pj in 0..npanels {
            let j0 = pj * nr;
            let w = m.saturating_sub(j0).min(nr);
            let panel = &mut data[pj * k * nr..(pj + 1) * k * nr];
            for p in 0..k {
                for jj in 0..w {
                    panel[p * nr + jj] = b[(j0 + jj) * k + p];
                }
            }
        }
        PackedMatrix { k, m, nr, data }
    }

    /// Packs a rank-2 tensor.
    pub fn from_tensor(t: &Tensor, nr: usize) -> Self {
        assert_eq!(t.shape().len(), 2, "from_tensor needs rank-2");
        Self::pack(t.data(), t.shape()[0], t.shape()[1], nr)
    }

    /// Inner (contraction) dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Panel width the matrix was packed with.
    pub fn nr(&self) -> usize {
        self.nr
    }
}

/// True when the running CPU supports the AVX2+FMA kernel variant.
fn kernel_uses_avx() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVX: OnceLock<bool> = OnceLock::new();
        *AVX.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `C (n×m) = A (n×k) · P` for a pre-packed `P`, with an optional fused bias
/// added to every output row. Writes (does not accumulate into) `c`.
///
/// This is the **portable** kernel used by the training-path [`matmul`] /
/// [`matmul_bt`]: per output element the accumulation runs ascending in `p`
/// exactly like the historical ikj kernel, so results are **bit-identical**
/// to the naive triple loop on every machine — packing changes memory
/// layout, never summation order. Training keeps this kernel because
/// checkpoints and the repo's determinism contracts rely on
/// machine-independent results; the serving path uses
/// [`matmul_packed_infer_into`] instead.
pub fn matmul_packed_into(
    a: &[f32],
    n: usize,
    k: usize,
    pb: &PackedMatrix,
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    check_packed_shapes(a, n, k, pb, bias, c);
    match pb.nr {
        4 => packed_kernel::<4>(a, n, k, pb, bias, c),
        8 => packed_kernel::<8>(a, n, k, pb, bias, c),
        16 => packed_kernel::<16>(a, n, k, pb, bias, c),
        w => unreachable!("unsupported panel width {w}"),
    }
}

/// The inference-grade variant of [`matmul_packed_into`]: on x86-64 with
/// AVX2+FMA (detected at runtime, cached) the accumulation uses 256-bit
/// fused multiply-adds — same ascending-`p` order, one rounding per step
/// instead of two, so results are at least as accurate as the portable
/// kernel and differ from it by ≤1 ulp per step. Deterministic on a given
/// machine (the serving contract); **not** machine-independent, which is why
/// the training tape does not use it. Falls back to the portable kernel
/// elsewhere.
pub fn matmul_packed_infer_into(
    a: &[f32],
    n: usize,
    k: usize,
    pb: &PackedMatrix,
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    check_packed_shapes(a, n, k, pb, bias, c);
    #[cfg(target_arch = "x86_64")]
    if kernel_uses_avx() {
        // SAFETY: feature presence checked by kernel_uses_avx().
        unsafe {
            match pb.nr {
                4 => packed_kernel_avx::<4>(a, n, k, pb, bias, c),
                8 => packed_kernel_avx::<8>(a, n, k, pb, bias, c),
                16 => packed_kernel_avx::<16>(a, n, k, pb, bias, c),
                w => unreachable!("unsupported panel width {w}"),
            }
        }
        return;
    }
    match pb.nr {
        4 => packed_kernel::<4>(a, n, k, pb, bias, c),
        8 => packed_kernel::<8>(a, n, k, pb, bias, c),
        16 => packed_kernel::<16>(a, n, k, pb, bias, c),
        w => unreachable!("unsupported panel width {w}"),
    }
}

#[inline]
fn check_packed_shapes(
    a: &[f32],
    n: usize,
    k: usize,
    pb: &PackedMatrix,
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    assert_eq!(pb.k, k, "packed inner dim: {} vs {k}", pb.k);
    assert_eq!(a.len(), n * k, "packed lhs size");
    assert_eq!(c.len(), n * pb.m, "packed out size");
    if let Some(bv) = bias {
        assert_eq!(bv.len(), pb.m, "packed bias size");
    }
}

#[inline]
fn store_tile<const NR: usize>(
    c: &mut [f32],
    m: usize,
    row: usize,
    j0: usize,
    w: usize,
    acc: &[f32; NR],
    bias: Option<&[f32]>,
) {
    let crow = &mut c[row * m + j0..row * m + j0 + w];
    match bias {
        Some(bv) => {
            for j in 0..w {
                crow[j] = acc[j] + bv[j0 + j];
            }
        }
        None => crow.copy_from_slice(&acc[..w]),
    }
}

/// Portable kernel: plain multiply-then-add accumulation.
fn packed_kernel<const NR: usize>(
    a: &[f32],
    n: usize,
    k: usize,
    pb: &PackedMatrix,
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    packed_kernel_body::<NR, false>(a, n, k, pb, bias, c)
}

/// AVX2+FMA instantiation of the same body: LLVM vectorizes the `NR`-lane
/// loops with 256-bit fused multiply-adds. Safe to *define* everywhere;
/// calling requires the runtime feature check in [`matmul_packed_into`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn packed_kernel_avx<const NR: usize>(
    a: &[f32],
    n: usize,
    k: usize,
    pb: &PackedMatrix,
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    packed_kernel_body::<NR, true>(a, n, k, pb, bias, c)
}

#[inline(always)]
fn fma_or_mul<const FMA: bool>(x: f32, y: f32, acc: f32) -> f32 {
    if FMA {
        x.mul_add(y, acc)
    } else {
        acc + x * y
    }
}

#[inline(always)]
fn packed_kernel_body<const NR: usize, const FMA: bool>(
    a: &[f32],
    n: usize,
    k: usize,
    pb: &PackedMatrix,
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    let m = pb.m;
    let npanels = m.div_ceil(NR).max(1);
    let mut i = 0;
    // MR-row register tiles: 4×NR accumulators live in registers for the
    // whole k loop, so C traffic is one store per element instead of one
    // load+store per (element, p) pair.
    while i + MR <= n {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        for pj in 0..npanels {
            let panel = &pb.data[pj * k * NR..(pj + 1) * k * NR];
            let mut acc0 = [0.0f32; NR];
            let mut acc1 = [0.0f32; NR];
            let mut acc2 = [0.0f32; NR];
            let mut acc3 = [0.0f32; NR];
            for p in 0..k {
                let bl: &[f32; NR] = panel[p * NR..p * NR + NR].try_into().expect("panel lane");
                let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
                for j in 0..NR {
                    acc0[j] = fma_or_mul::<FMA>(x0, bl[j], acc0[j]);
                    acc1[j] = fma_or_mul::<FMA>(x1, bl[j], acc1[j]);
                    acc2[j] = fma_or_mul::<FMA>(x2, bl[j], acc2[j]);
                    acc3[j] = fma_or_mul::<FMA>(x3, bl[j], acc3[j]);
                }
            }
            let j0 = pj * NR;
            let w = m.saturating_sub(j0).min(NR);
            store_tile(c, m, i, j0, w, &acc0, bias);
            store_tile(c, m, i + 1, j0, w, &acc1, bias);
            store_tile(c, m, i + 2, j0, w, &acc2, bias);
            store_tile(c, m, i + 3, j0, w, &acc3, bias);
        }
        i += MR;
    }
    // remainder rows: single-row tiles
    while i < n {
        let arow = &a[i * k..(i + 1) * k];
        for pj in 0..npanels {
            let panel = &pb.data[pj * k * NR..(pj + 1) * k * NR];
            let mut acc = [0.0f32; NR];
            for (p, &av) in arow.iter().enumerate() {
                let bl: &[f32; NR] = panel[p * NR..p * NR + NR].try_into().expect("panel lane");
                for j in 0..NR {
                    acc[j] = fma_or_mul::<FMA>(av, bl[j], acc[j]);
                }
            }
            let j0 = pj * NR;
            let w = m.saturating_sub(j0).min(NR);
            store_tile(c, m, i, j0, w, &acc, bias);
        }
        i += 1;
    }
}

/// Fans a packed matmul out over rayon in `MR`-aligned row blocks (or runs
/// it inline for small `n` / single-thread pools).
///
/// Chunk sizing: `ceil(n / 2·threads)` rounded up to `MR` — two blocks per
/// thread instead of the old one-per-thread split. The pool claims blocks
/// dynamically, so the extra granularity lets a thread that finishes early
/// (or a core the OS preempted) pick up the slack; with spawn-per-call this
/// overpartitioning would have doubled the spawn count, with the pool it
/// costs one more queue operation. Chunking never affects numerics — rows
/// are computed independently.
fn packed_parallel(a: &[f32], n: usize, k: usize, pb: &PackedMatrix, c: &mut [f32]) {
    let m = pb.m;
    let threads = rayon::current_num_threads().max(1);
    if n < PAR_ROW_THRESHOLD || threads == 1 {
        matmul_packed_into(a, n, k, pb, None, c);
        return;
    }
    let rows_per = n.div_ceil(threads * 2).max(1).next_multiple_of(MR);
    c.par_chunks_mut(rows_per * m)
        .enumerate()
        .for_each(|(bi, cc)| {
            let i0 = bi * rows_per;
            let rows = cc.len() / m;
            matmul_packed_into(&a[i0 * k..(i0 + rows) * k], rows, k, pb, None, cc);
        });
}

/// `C = A (n×k) · B (k×m)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = (a.rows(), a.last_dim());
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank-2");
    let (k2, m) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut out = Tensor::zeros(&[n, m]);
    let pb = PackedMatrix::pack(b.data(), k, m, DEFAULT_PANEL);
    packed_parallel(a.data(), n, k, &pb, out.data_mut());
    out
}

/// `C = A (n×k) · Bᵀ` where `B` is `(m×k)`. Packing performs the transpose,
/// so this shares the register-tiled forward kernel (and its bit-exact
/// ascending-`k` accumulation order) with [`matmul`].
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = (a.rows(), a.last_dim());
    let (m, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_bt inner dims: {k} vs {k2}");
    let mut out = Tensor::zeros(&[n, m]);
    let pb = PackedMatrix::pack_bt(b.data(), m, k, DEFAULT_PANEL);
    packed_parallel(a.data(), n, k, &pb, out.data_mut());
    out
}

/// Computes `C (k×m) = Aᵀ · B` where `A` is `(n×k)` and `B` is `(n×m)`.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = (a.rows(), a.last_dim());
    let (n2, m) = (b.rows(), b.last_dim());
    assert_eq!(n, n2, "matmul_at outer dims: {n} vs {n2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = Tensor::zeros(&[k, m]);
    let threads = rayon::current_num_threads().max(1);
    // Row-parallel over `k` would stride badly through `A`, so iterate
    // samples and accumulate per-thread `k×m` partials, then reduce.
    //
    // Chunk sizing: two contiguous runs per thread (`ceil(n/2·threads)`)
    // with an 8-row floor. The old one-run-per-thread `ceil(n/threads)`
    // split with a 16-row floor was calibrated for spawn-per-call dispatch;
    // on the persistent pool a chunk costs a queue push, so the finer split
    // buys dynamic rebalancing (a preempted or late-starting thread no
    // longer gates the whole reduction) for one extra `O(k·m)` partial
    // merge per thread. The floor still exists so a run amortizes its own
    // partial buffer + reduction. Small batches (`n <= 64`) and
    // single-thread pools skip the partials entirely and accumulate
    // straight into the output.
    if threads == 1 || n <= 64 {
        let od = out.data_mut();
        for i in 0..n {
            let arow = &ad[i * k..(i + 1) * k];
            let brow = &bd[i * m..(i + 1) * m];
            for (p, &av) in arow.iter().enumerate() {
                let dst = &mut od[p * m..(p + 1) * m];
                for (d, &bv) in dst.iter_mut().zip(brow.iter()) {
                    *d += av * bv;
                }
            }
        }
        return out;
    }
    let chunk = n.div_ceil(threads * 2).max(8);
    let partials: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .chunks(chunk)
        .map(|rows| {
            let mut local = vec![0.0f32; k * m];
            for i in rows {
                let arow = &ad[i * k..(i + 1) * k];
                let brow = &bd[i * m..(i + 1) * m];
                for (p, &av) in arow.iter().enumerate() {
                    let dst = &mut local[p * m..(p + 1) * m];
                    for (d, &bv) in dst.iter_mut().zip(brow.iter()) {
                        *d += av * bv;
                    }
                }
            }
            local
        })
        .collect();
    let od = out.data_mut();
    for p in partials {
        for (o, v) in od.iter_mut().zip(p.iter()) {
            *o += v;
        }
    }
    out
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Batched matmul: `A [b,n,k] · B [b,k,m] -> [b,n,m]`.
/// With `tb = true`, `B` is `[b,m,k]` and used transposed.
pub fn bmm(a: &Tensor, b: &Tensor, tb: bool) -> Tensor {
    assert_eq!(a.shape().len(), 3, "bmm lhs must be rank-3");
    assert_eq!(b.shape().len(), 3, "bmm rhs must be rank-3");
    let (bs, n, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    assert_eq!(b.shape()[0], bs, "bmm batch dims");
    let m = if tb { b.shape()[1] } else { b.shape()[2] };
    if tb {
        assert_eq!(b.shape()[2], k, "bmm(tb) inner dims");
    } else {
        assert_eq!(b.shape()[1], k, "bmm inner dims");
    }
    let mut out = Tensor::zeros(&[bs, n, m]);
    let ad = a.data();
    let bd = b.data();
    out.data_mut()
        .par_chunks_mut(n * m)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &ad[bi * n * k..(bi + 1) * n * k];
            let bslab = &bd[bi * k * m..(bi + 1) * k * m];
            if tb {
                for i in 0..n {
                    let arow = &aslab[i * k..(i + 1) * k];
                    for j in 0..m {
                        cslab[i * m + j] = dot(arow, &bslab[j * k..(j + 1) * k]);
                    }
                }
            } else {
                for i in 0..n {
                    let arow = &aslab[i * k..(i + 1) * k];
                    let crow = &mut cslab[i * m..(i + 1) * m];
                    for (p, &av) in arow.iter().enumerate() {
                        let brow = &bslab[p * m..(p + 1) * m];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        });
    out
}

/// Batched `Aᵀ·B` per slab: `A [b,n,k]`, `B [b,n,m]` → `[b,k,m]`.
pub fn bmm_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, n, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let m = b.shape()[2];
    assert_eq!(b.shape()[0], bs);
    assert_eq!(b.shape()[1], n);
    let mut out = Tensor::zeros(&[bs, k, m]);
    let ad = a.data();
    let bd = b.data();
    out.data_mut()
        .par_chunks_mut(k * m)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &ad[bi * n * k..(bi + 1) * n * k];
            let bslab = &bd[bi * n * m..(bi + 1) * n * m];
            for i in 0..n {
                let arow = &aslab[i * k..(i + 1) * k];
                let brow = &bslab[i * m..(i + 1) * m];
                for (p, &av) in arow.iter().enumerate() {
                    let crow = &mut cslab[p * m..(p + 1) * m];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        });
    out
}

/// Softmax over the trailing dimension (numerically stabilized).
pub fn softmax_lastdim(x: &Tensor) -> Tensor {
    let d = x.last_dim();
    let mut out = x.clone();
    out.data_mut().par_chunks_mut(d).for_each(|row| {
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - maxv).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    });
    out
}

/// Log-softmax over the trailing dimension.
pub fn log_softmax_lastdim(x: &Tensor) -> Tensor {
    let d = x.last_dim();
    let mut out = x.clone();
    out.data_mut().par_chunks_mut(d).for_each(|row| {
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let lse = row.iter().map(|&v| (v - maxv).exp()).sum::<f32>().ln() + maxv;
        for v in row.iter_mut() {
            *v -= lse;
        }
    });
    out
}

/// Branch-light polynomial cosine for the inference fast path's time
/// encodings.
///
/// Range-reduces in f64 (`r = x/2π − round(x/2π)`, magic-number rounding so
/// the whole body is straight-line math), then evaluates
/// `cos(2πr) = 1 − 2·sin²(πr)` with a degree-11 odd polynomial for `sin` on
/// `[-π/2, π/2]`. Max absolute error ≈ 7e-7 (1-2 f32 ulps near |cos| = 1)
/// versus libm `cosf` across the timespans serving sees — far inside the
/// fast-vs-tape 1e-5 equivalence budget — at a fraction of libm's cost, and
/// auto-vectorizable when evaluated over encoding rows.
#[inline]
pub fn fast_cos(x: f32) -> f32 {
    const INV_TAU: f64 = 1.0 / std::f64::consts::TAU;
    // Beyond |x| ≈ 1e8 the f64 fractional part of x/2π carries too few
    // bits for a ≤1e-7 reduction (and far beyond that the magic-constant
    // rounding itself stops working), so rare huge timespans — and NaN —
    // take the libm path instead of silently degrading.
    if x.abs() > 1e8 || x.is_nan() {
        return x.cos();
    }
    // round-to-nearest via the 2^52-magic constant
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
    let t = x as f64 * INV_TAU;
    let r = t - ((t + MAGIC) - MAGIC); // [-0.5, 0.5]
    let h = (r * std::f64::consts::PI) as f32; // half-angle in [-π/2, π/2]
    let h2 = h * h;
    // sin(h), degree-11 Taylor (max err ~6e-8 on the reduced range)
    let s = h
        * (1.0
            + h2 * (-1.666_666_6e-1
                + h2 * (8.333_333e-3
                    + h2 * (-1.984_127e-4 + h2 * (2.755_732e-6 + h2 * -2.505_21e-8)))));
    1.0 - 2.0 * s * s
}

/// Branch-light rational tanh (7th-order continued fraction, clamped).
/// Max error ≈ 3e-4 over ℝ; fully auto-vectorizable, which matters on the
/// GeLU-heavy mixer path.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    let x = x.clamp(-4.97, 4.97);
    let x2 = x * x;
    let p = x * (135_135.0 + x2 * (17_325.0 + x2 * (378.0 + x2)));
    let q = 135_135.0 + x2 * (62_370.0 + x2 * (3_150.0 + x2 * 28.0));
    p / q
}

/// GeLU with the tanh approximation (matches common framework defaults);
/// the tanh itself is [`fast_tanh`] so forward and gradient stay consistent.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + fast_tanh(C * (x + 0.044715 * x * x * x)))
}

/// Derivative of [`gelu`] with respect to its input.
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = fast_tanh(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Permutes `[b, n, d]` to `[b, d, n]` (explicit copy).
pub fn transpose12(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 3, "transpose12 needs rank-3");
    let (b, n, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[b, d, n]);
    let xd = x.data();
    out.data_mut()
        .par_chunks_mut(d * n)
        .enumerate()
        .for_each(|(bi, slab)| {
            let xs = &xd[bi * n * d..(bi + 1) * n * d];
            for i in 0..n {
                for j in 0..d {
                    slab[j * n + i] = xs[i * d + j];
                }
            }
        });
    out
}

/// Reorders `[r*n, h*dh]` into `[r*h, n, dh]` — grouping attention heads so
/// per-head score matrices are contiguous slabs for [`bmm`].
pub fn split_heads(x: &Tensor, n: usize, h: usize) -> Tensor {
    let rows = x.rows();
    let dm = x.last_dim();
    assert_eq!(
        rows % n,
        0,
        "split_heads rows {rows} not divisible by n {n}"
    );
    assert_eq!(dm % h, 0, "split_heads dim {dm} not divisible by heads {h}");
    let r = rows / n;
    let dh = dm / h;
    let mut out = Tensor::zeros(&[r * h, n, dh]);
    let xd = x.data();
    let od = out.data_mut();
    for ri in 0..r {
        for hi in 0..h {
            for ni in 0..n {
                let src = (ri * n + ni) * dm + hi * dh;
                let dst = ((ri * h + hi) * n + ni) * dh;
                od[dst..dst + dh].copy_from_slice(&xd[src..src + dh]);
            }
        }
    }
    out
}

/// Inverse of [`split_heads`]: `[r*h, n, dh]` back to `[r*n, h*dh]`.
pub fn merge_heads(x: &Tensor, h: usize) -> Tensor {
    assert_eq!(x.shape().len(), 3);
    let (rh, n, dh) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(rh % h, 0);
    let r = rh / h;
    let mut out = Tensor::zeros(&[r * n, h * dh]);
    let xd = x.data();
    let od = out.data_mut();
    for ri in 0..r {
        for hi in 0..h {
            for ni in 0..n {
                let src = ((ri * h + hi) * n + ni) * dh;
                let dst = (ri * n + ni) * (h * dh) + hi * dh;
                od[dst..dst + dh].copy_from_slice(&xd[src..src + dh]);
            }
        }
    }
    out
}

/// Mean over the middle (token) dimension: `[b, n, d] -> [b, d]`.
pub fn mean_tokens(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 3);
    let (b, n, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[b, d]);
    let xd = x.data();
    out.data_mut()
        .par_chunks_mut(d)
        .enumerate()
        .for_each(|(bi, orow)| {
            let slab = &xd[bi * n * d..(bi + 1) * n * d];
            for i in 0..n {
                for (o, &v) in orow.iter_mut().zip(slab[i * d..(i + 1) * d].iter()) {
                    *o += v;
                }
            }
            let inv = 1.0 / n as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        });
    out
}

/// Gathers rows of a 2-D-viewed tensor: `out[i] = x[idx[i]]`.
pub fn gather_rows(x: &Tensor, idx: &[usize]) -> Tensor {
    let d = x.last_dim();
    let rows = x.rows();
    let mut out = Tensor::zeros(&[idx.len(), d]);
    let xd = x.data();
    let od = out.data_mut();
    for (i, &j) in idx.iter().enumerate() {
        assert!(j < rows, "gather index {j} out of range {rows}");
        od[i * d..(i + 1) * d].copy_from_slice(&xd[j * d..(j + 1) * d]);
    }
    out
}

/// LayerNorm forward over the trailing dimension.
/// Returns `(normalized_out, xhat, rstd)` where `out = xhat*gamma + beta`.
pub fn layer_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, Tensor, Vec<f32>) {
    let d = x.last_dim();
    assert_eq!(gamma.numel(), d);
    assert_eq!(beta.numel(), d);
    let rows = x.rows();
    let mut out = x.clone();
    let mut xhat = x.clone();
    let mut rstd = vec![0.0f32; rows];
    let g = gamma.data();
    let b = beta.data();
    let xh = xhat.data_mut();
    let od = out.data_mut();
    od.par_chunks_mut(d)
        .zip(xh.par_chunks_mut(d))
        .zip(rstd.par_iter_mut())
        .for_each(|((orow, hrow), rs)| {
            let mean = orow.iter().sum::<f32>() / d as f32;
            let var = orow.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let r = 1.0 / (var + eps).sqrt();
            *rs = r;
            for j in 0..d {
                let h = (orow[j] - mean) * r;
                hrow[j] = h;
                orow[j] = h * g[j] + b[j];
            }
        });
    (out, xhat, rstd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.0, 1.0, 2.0, 1.0, 2.0], &[2, 3]); // (2x3), use as Bᵀ (3x2)
        let c = matmul_bt(&a, &b);
        // C[i][j] = a_i . b_j
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[4.0, 10.0, 10.0, 25.0]);
    }

    #[test]
    fn matmul_at_matches_manual() {
        // A (3x2), B (3x2): C = Aᵀ B is (2x2)
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 1.0, 2.0, 2.0, 3.0, 3.0], &[3, 2]);
        let c = matmul_at(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        // col0 of A = [1,3,5], col1 = [2,4,6]; col0 of B=[1,2,3], col1=[1,2,3]
        assert_eq!(c.data(), &[22.0, 22.0, 28.0, 28.0]);
    }

    #[test]
    fn packed_matmul_matches_reference_all_widths() {
        // odd shapes exercise remainder rows and partial tail panels
        for &(n, k, m) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (9, 13, 17),
            (64, 33, 40),
        ] {
            let a: Vec<f32> = (0..n * k).map(|i| ((i * 7) % 11) as f32 - 5.0).collect();
            let b: Vec<f32> = (0..k * m).map(|i| ((i * 5) % 9) as f32 - 4.0).collect();
            let mut want = vec![0.0f32; n * m];
            for i in 0..n {
                for j in 0..m {
                    want[i * m + j] = (0..k).map(|p| a[i * k + p] * b[p * m + j]).sum();
                }
            }
            for nr in [4usize, 8, 16] {
                let pb = PackedMatrix::pack(&b, k, m, nr);
                let mut c = vec![0.0f32; n * m];
                matmul_packed_into(&a, n, k, &pb, None, &mut c);
                for (x, y) in c.iter().zip(want.iter()) {
                    assert!((x - y).abs() < 1e-4, "nr={nr} n={n} k={k} m={m}");
                }
            }
        }
    }

    #[test]
    fn packed_fused_bias_matches_separate_add() {
        let (n, k, m) = (6, 5, 10);
        let a: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.3 - 4.0).collect();
        let b: Vec<f32> = (0..k * m).map(|i| i as f32 * 0.1 - 2.0).collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32 - 5.0).collect();
        let pb = PackedMatrix::pack(&b, k, m, 8);
        let mut fused = vec![0.0f32; n * m];
        matmul_packed_into(&a, n, k, &pb, Some(&bias), &mut fused);
        let mut plain = vec![0.0f32; n * m];
        matmul_packed_into(&a, n, k, &pb, None, &mut plain);
        for i in 0..n {
            for j in 0..m {
                assert_eq!(fused[i * m + j], plain[i * m + j] + bias[j]);
            }
        }
    }

    #[test]
    fn pack_bt_shares_forward_kernel() {
        // matmul_bt(A, B) == matmul(A, Bᵀ) bit-for-bit
        let a = t(
            &(0..12).map(|v| v as f32 * 0.5 - 2.0).collect::<Vec<_>>(),
            &[4, 3],
        );
        let b = t(
            &(0..15).map(|v| v as f32 * 0.2 - 1.0).collect::<Vec<_>>(),
            &[5, 3],
        );
        let via_bt = matmul_bt(&a, &b);
        let mut btt = vec![0.0f32; 15];
        for j in 0..5 {
            for p in 0..3 {
                btt[p * 5 + j] = b.at2(j, p);
            }
        }
        let via_mm = matmul(&a, &t(&btt, &[3, 5]));
        assert_eq!(via_bt.data(), via_mm.data());
    }

    #[test]
    fn matmul_at_sequential_and_chunked_agree() {
        let (n, k, m) = (130usize, 6usize, 5usize);
        let a = Tensor::from_vec((0..n * k).map(|i| (i % 13) as f32 - 6.0).collect(), &[n, k]);
        let b = Tensor::from_vec((0..n * m).map(|i| (i % 7) as f32 - 3.0).collect(), &[n, m]);
        let c = matmul_at(&a, &b);
        for p in 0..k {
            for j in 0..m {
                let want: f32 = (0..n).map(|i| a.at2(i, p) * b.at2(i, j)).sum();
                assert!((c.at2(p, j) - want).abs() < 1e-2, "({p},{j})");
            }
        }
    }

    #[test]
    fn matmul_large_parallel_consistent() {
        // Exercise the rayon path (n >= threshold) against a serial reference.
        let n = 64;
        let k = 17;
        let m = 9;
        let a = Tensor::from_vec((0..n * k).map(|i| (i % 7) as f32 - 3.0).collect(), &[n, k]);
        let b = Tensor::from_vec((0..k * m).map(|i| (i % 5) as f32 - 2.0).collect(), &[k, m]);
        let c = matmul(&a, &b);
        for i in [0usize, 13, 63] {
            for j in 0..m {
                let want: f32 = (0..k).map(|p| a.at2(i, p) * b.at2(p, j)).sum();
                assert!((c.at2(i, j) - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bmm_and_bmm_tb() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let b = t(&[1.0, 0.0, 0.0, 1.0], &[1, 2, 2]);
        assert_eq!(bmm(&a, &b, false).data(), &[1.0, 2.0, 3.0, 4.0]);
        // tb: B interpreted [b, m, k] and transposed
        let bt = t(&[0.0, 1.0, 1.0, 0.0], &[1, 2, 2]);
        assert_eq!(bmm(&a, &bt, true).data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn bmm_at_matches_manual() {
        // A [1, 2 (n), 3 (k)], B [1, 2 (n), 1 (m)] -> [1, 3, 1]
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]);
        let b = t(&[1.0, 2.0], &[1, 2, 1]);
        let c = bmm_at(&a, &b);
        assert_eq!(c.shape(), &[1, 3, 1]);
        assert_eq!(c.data(), &[9.0, 12.0, 15.0]); // 1*1+4*2, 2+5*2, 3+6*2
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_lastdim(&x);
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // softmax is shift invariant
        let y = x.map(|v| v + 100.0);
        assert!(softmax_lastdim(&y).allclose(&s, 1e-5));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = t(&[0.5, -1.5, 2.0], &[1, 3]);
        let ls = log_softmax_lastdim(&x);
        let s = softmax_lastdim(&x);
        for i in 0..3 {
            assert!((ls.data()[i].exp() - s.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn fast_cos_tracks_libm() {
        // dense sweep of one period plus the large-timespan magnitudes the
        // time encodings produce
        let mut worst = 0.0f32;
        for i in 0..10_000 {
            let x = (i as f32 - 5_000.0) * 0.001_3;
            worst = worst.max((fast_cos(x) - x.cos()).abs());
        }
        for i in 0..10_000 {
            let x = (i as f32) * 173.7 - 860_000.0;
            worst = worst.max((fast_cos(x) - x.cos()).abs());
        }
        assert!(worst < 2e-6, "fast_cos max error {worst}");
        // beyond the polynomial's reduction range: exact libm fallback
        for x in [3.7e8f32, -9.1e12, 2.5e37, f32::NAN] {
            assert_eq!(fast_cos(x).to_bits(), x.cos().to_bits(), "fallback at {x}");
        }
    }

    #[test]
    fn gelu_reference_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // finite-difference check of the gradient
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-3;
            let fd = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: {} vs {}",
                gelu_grad(x),
                fd
            );
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
    }

    #[test]
    fn transpose12_roundtrip() {
        let x = t(&(0..24).map(|v| v as f32).collect::<Vec<_>>(), &[2, 3, 4]);
        let y = transpose12(&x);
        assert_eq!(y.shape(), &[2, 4, 3]);
        let z = transpose12(&y);
        assert!(z.allclose(&x, 0.0));
    }

    #[test]
    fn head_split_merge_roundtrip() {
        let x = t(&(0..24).map(|v| v as f32).collect::<Vec<_>>(), &[6, 4]); // r=3,n=2,h=2,dh=2
        let s = split_heads(&x, 2, 2);
        assert_eq!(s.shape(), &[6, 2, 2]);
        let m = merge_heads(&s, 2);
        assert!(m.reshape(&[6, 4]).allclose(&x, 0.0));
    }

    #[test]
    fn split_heads_layout() {
        // r=1, n=2 neighbors, h=2 heads, dh=1
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = split_heads(&x, 2, 2);
        // head 0: rows [1,3]; head 1: rows [2,4]
        assert_eq!(s.data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn mean_tokens_simple() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let m = mean_tokens(&x);
        assert_eq!(m.shape(), &[1, 2]);
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    fn gather_rows_copies() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = gather_rows(&x, &[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let g = Tensor::ones(&[4]);
        let b = Tensor::zeros(&[4]);
        let (out, xhat, rstd) = layer_norm(&x, &g, &b, 1e-5);
        let mean: f32 = out.data().iter().sum::<f32>() / 4.0;
        let var: f32 = out
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
        assert_eq!(out.data(), xhat.data());
        assert_eq!(rstd.len(), 1);
    }
}
