//! Raw compute kernels over [`Tensor`]s.
//!
//! Everything here is a pure function with no autograd bookkeeping; the tape
//! in [`crate::graph`] composes these into differentiable ops. Matrix products
//! parallelize over output rows with rayon, which is where essentially all of
//! the training time goes.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Minimum number of output rows before a matmul fans out to rayon.
/// Below this the parallel dispatch overhead dominates.
const PAR_ROW_THRESHOLD: usize = 32;

/// `C = A (n×k) · B (k×m)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = (a.rows(), a.last_dim());
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank-2");
    let (k2, m) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut out = Tensor::zeros(&[n, m]);
    matmul_into(a.data(), b.data(), out.data_mut(), n, k, m);
    out
}

/// `C = A (n×k) · Bᵀ` where `B` is `(m×k)`.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = (a.rows(), a.last_dim());
    let (m, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_bt inner dims: {k} vs {k2}");
    let mut out = Tensor::zeros(&[n, m]);
    let (ad, bd) = (a.data(), b.data());
    let body = |(i, row): (usize, &mut [f32])| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in row.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            *o = dot(arow, brow);
        }
    };
    if n >= PAR_ROW_THRESHOLD {
        out.data_mut().par_chunks_mut(m).enumerate().for_each(body);
    } else {
        out.data_mut().chunks_mut(m).enumerate().for_each(body);
    }
    out
}

/// `C = Aᵀ (k×n becomes n? no: A is (k×n) stored, we want Aᵀ·B)`.
/// Computes `C (k×m) = Aᵀ · B` where `A` is `(n×k)` and `B` is `(n×m)`.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = (a.rows(), a.last_dim());
    let (n2, m) = (b.rows(), b.last_dim());
    assert_eq!(n, n2, "matmul_at outer dims: {n} vs {n2}");
    let ad = a.data();
    let bd = b.data();
    // Accumulate per-thread partial products, then reduce. Row-parallel over
    // `k` would stride badly through `A`, so iterate samples and accumulate.
    let chunk = (n / rayon::current_num_threads().max(1)).max(64);
    let partials: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .chunks(chunk)
        .map(|rows| {
            let mut local = vec![0.0f32; k * m];
            for i in rows {
                let arow = &ad[i * k..(i + 1) * k];
                let brow = &bd[i * m..(i + 1) * m];
                for (p, &av) in arow.iter().enumerate() {
                    let dst = &mut local[p * m..(p + 1) * m];
                    for (d, &bv) in dst.iter_mut().zip(brow.iter()) {
                        *d += av * bv;
                    }
                }
            }
            local
        })
        .collect();
    let mut out = Tensor::zeros(&[k, m]);
    let od = out.data_mut();
    for p in partials {
        for (o, v) in od.iter_mut().zip(p.iter()) {
            *o += v;
        }
    }
    out
}

fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], n: usize, k: usize, m: usize) {
    // Branch-free ikj kernel: the inner axpy over contiguous rows of B
    // auto-vectorizes.
    let body = |(i, crow): (usize, &mut [f32])| {
        let arow = &a[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * m..(p + 1) * m];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    };
    if n >= PAR_ROW_THRESHOLD {
        c.par_chunks_mut(m).enumerate().for_each(body);
    } else {
        c.chunks_mut(m).enumerate().for_each(body);
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Batched matmul: `A [b,n,k] · B [b,k,m] -> [b,n,m]`.
/// With `tb = true`, `B` is `[b,m,k]` and used transposed.
pub fn bmm(a: &Tensor, b: &Tensor, tb: bool) -> Tensor {
    assert_eq!(a.shape().len(), 3, "bmm lhs must be rank-3");
    assert_eq!(b.shape().len(), 3, "bmm rhs must be rank-3");
    let (bs, n, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    assert_eq!(b.shape()[0], bs, "bmm batch dims");
    let m = if tb { b.shape()[1] } else { b.shape()[2] };
    if tb {
        assert_eq!(b.shape()[2], k, "bmm(tb) inner dims");
    } else {
        assert_eq!(b.shape()[1], k, "bmm inner dims");
    }
    let mut out = Tensor::zeros(&[bs, n, m]);
    let ad = a.data();
    let bd = b.data();
    out.data_mut()
        .par_chunks_mut(n * m)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &ad[bi * n * k..(bi + 1) * n * k];
            let bslab = &bd[bi * k * m..(bi + 1) * k * m];
            if tb {
                for i in 0..n {
                    let arow = &aslab[i * k..(i + 1) * k];
                    for j in 0..m {
                        cslab[i * m + j] = dot(arow, &bslab[j * k..(j + 1) * k]);
                    }
                }
            } else {
                for i in 0..n {
                    let arow = &aslab[i * k..(i + 1) * k];
                    let crow = &mut cslab[i * m..(i + 1) * m];
                    for (p, &av) in arow.iter().enumerate() {
                        let brow = &bslab[p * m..(p + 1) * m];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        });
    out
}

/// Batched `Aᵀ·B` per slab: `A [b,n,k]`, `B [b,n,m]` → `[b,k,m]`.
pub fn bmm_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, n, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let m = b.shape()[2];
    assert_eq!(b.shape()[0], bs);
    assert_eq!(b.shape()[1], n);
    let mut out = Tensor::zeros(&[bs, k, m]);
    let ad = a.data();
    let bd = b.data();
    out.data_mut()
        .par_chunks_mut(k * m)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &ad[bi * n * k..(bi + 1) * n * k];
            let bslab = &bd[bi * n * m..(bi + 1) * n * m];
            for i in 0..n {
                let arow = &aslab[i * k..(i + 1) * k];
                let brow = &bslab[i * m..(i + 1) * m];
                for (p, &av) in arow.iter().enumerate() {
                    let crow = &mut cslab[p * m..(p + 1) * m];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += av * bv;
                    }
                }
            }
        });
    out
}

/// Softmax over the trailing dimension (numerically stabilized).
pub fn softmax_lastdim(x: &Tensor) -> Tensor {
    let d = x.last_dim();
    let mut out = x.clone();
    out.data_mut().par_chunks_mut(d).for_each(|row| {
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - maxv).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    });
    out
}

/// Log-softmax over the trailing dimension.
pub fn log_softmax_lastdim(x: &Tensor) -> Tensor {
    let d = x.last_dim();
    let mut out = x.clone();
    out.data_mut().par_chunks_mut(d).for_each(|row| {
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let lse = row.iter().map(|&v| (v - maxv).exp()).sum::<f32>().ln() + maxv;
        for v in row.iter_mut() {
            *v -= lse;
        }
    });
    out
}

/// Branch-light rational tanh (7th-order continued fraction, clamped).
/// Max error ≈ 3e-4 over ℝ; fully auto-vectorizable, which matters on the
/// GeLU-heavy mixer path.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    let x = x.clamp(-4.97, 4.97);
    let x2 = x * x;
    let p = x * (135_135.0 + x2 * (17_325.0 + x2 * (378.0 + x2)));
    let q = 135_135.0 + x2 * (62_370.0 + x2 * (3_150.0 + x2 * 28.0));
    p / q
}

/// GeLU with the tanh approximation (matches common framework defaults);
/// the tanh itself is [`fast_tanh`] so forward and gradient stay consistent.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + fast_tanh(C * (x + 0.044715 * x * x * x)))
}

/// Derivative of [`gelu`] with respect to its input.
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = fast_tanh(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Permutes `[b, n, d]` to `[b, d, n]` (explicit copy).
pub fn transpose12(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 3, "transpose12 needs rank-3");
    let (b, n, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[b, d, n]);
    let xd = x.data();
    out.data_mut()
        .par_chunks_mut(d * n)
        .enumerate()
        .for_each(|(bi, slab)| {
            let xs = &xd[bi * n * d..(bi + 1) * n * d];
            for i in 0..n {
                for j in 0..d {
                    slab[j * n + i] = xs[i * d + j];
                }
            }
        });
    out
}

/// Reorders `[r*n, h*dh]` into `[r*h, n, dh]` — grouping attention heads so
/// per-head score matrices are contiguous slabs for [`bmm`].
pub fn split_heads(x: &Tensor, n: usize, h: usize) -> Tensor {
    let rows = x.rows();
    let dm = x.last_dim();
    assert_eq!(
        rows % n,
        0,
        "split_heads rows {rows} not divisible by n {n}"
    );
    assert_eq!(dm % h, 0, "split_heads dim {dm} not divisible by heads {h}");
    let r = rows / n;
    let dh = dm / h;
    let mut out = Tensor::zeros(&[r * h, n, dh]);
    let xd = x.data();
    let od = out.data_mut();
    for ri in 0..r {
        for hi in 0..h {
            for ni in 0..n {
                let src = (ri * n + ni) * dm + hi * dh;
                let dst = ((ri * h + hi) * n + ni) * dh;
                od[dst..dst + dh].copy_from_slice(&xd[src..src + dh]);
            }
        }
    }
    out
}

/// Inverse of [`split_heads`]: `[r*h, n, dh]` back to `[r*n, h*dh]`.
pub fn merge_heads(x: &Tensor, h: usize) -> Tensor {
    assert_eq!(x.shape().len(), 3);
    let (rh, n, dh) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(rh % h, 0);
    let r = rh / h;
    let mut out = Tensor::zeros(&[r * n, h * dh]);
    let xd = x.data();
    let od = out.data_mut();
    for ri in 0..r {
        for hi in 0..h {
            for ni in 0..n {
                let src = ((ri * h + hi) * n + ni) * dh;
                let dst = (ri * n + ni) * (h * dh) + hi * dh;
                od[dst..dst + dh].copy_from_slice(&xd[src..src + dh]);
            }
        }
    }
    out
}

/// Mean over the middle (token) dimension: `[b, n, d] -> [b, d]`.
pub fn mean_tokens(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 3);
    let (b, n, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[b, d]);
    let xd = x.data();
    out.data_mut()
        .par_chunks_mut(d)
        .enumerate()
        .for_each(|(bi, orow)| {
            let slab = &xd[bi * n * d..(bi + 1) * n * d];
            for i in 0..n {
                for (o, &v) in orow.iter_mut().zip(slab[i * d..(i + 1) * d].iter()) {
                    *o += v;
                }
            }
            let inv = 1.0 / n as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        });
    out
}

/// Gathers rows of a 2-D-viewed tensor: `out[i] = x[idx[i]]`.
pub fn gather_rows(x: &Tensor, idx: &[usize]) -> Tensor {
    let d = x.last_dim();
    let rows = x.rows();
    let mut out = Tensor::zeros(&[idx.len(), d]);
    let xd = x.data();
    let od = out.data_mut();
    for (i, &j) in idx.iter().enumerate() {
        assert!(j < rows, "gather index {j} out of range {rows}");
        od[i * d..(i + 1) * d].copy_from_slice(&xd[j * d..(j + 1) * d]);
    }
    out
}

/// LayerNorm forward over the trailing dimension.
/// Returns `(normalized_out, xhat, rstd)` where `out = xhat*gamma + beta`.
pub fn layer_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, Tensor, Vec<f32>) {
    let d = x.last_dim();
    assert_eq!(gamma.numel(), d);
    assert_eq!(beta.numel(), d);
    let rows = x.rows();
    let mut out = x.clone();
    let mut xhat = x.clone();
    let mut rstd = vec![0.0f32; rows];
    let g = gamma.data();
    let b = beta.data();
    let xh = xhat.data_mut();
    let od = out.data_mut();
    od.par_chunks_mut(d)
        .zip(xh.par_chunks_mut(d))
        .zip(rstd.par_iter_mut())
        .for_each(|((orow, hrow), rs)| {
            let mean = orow.iter().sum::<f32>() / d as f32;
            let var = orow.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let r = 1.0 / (var + eps).sqrt();
            *rs = r;
            for j in 0..d {
                let h = (orow[j] - mean) * r;
                hrow[j] = h;
                orow[j] = h * g[j] + b[j];
            }
        });
    (out, xhat, rstd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn matmul_small() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, 0.0, 1.0, 2.0, 1.0, 2.0], &[2, 3]); // (2x3), use as Bᵀ (3x2)
        let c = matmul_bt(&a, &b);
        // C[i][j] = a_i . b_j
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[4.0, 10.0, 10.0, 25.0]);
    }

    #[test]
    fn matmul_at_matches_manual() {
        // A (3x2), B (3x2): C = Aᵀ B is (2x2)
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 1.0, 2.0, 2.0, 3.0, 3.0], &[3, 2]);
        let c = matmul_at(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        // col0 of A = [1,3,5], col1 = [2,4,6]; col0 of B=[1,2,3], col1=[1,2,3]
        assert_eq!(c.data(), &[22.0, 22.0, 28.0, 28.0]);
    }

    #[test]
    fn matmul_large_parallel_consistent() {
        // Exercise the rayon path (n >= threshold) against a serial reference.
        let n = 64;
        let k = 17;
        let m = 9;
        let a = Tensor::from_vec((0..n * k).map(|i| (i % 7) as f32 - 3.0).collect(), &[n, k]);
        let b = Tensor::from_vec((0..k * m).map(|i| (i % 5) as f32 - 2.0).collect(), &[k, m]);
        let c = matmul(&a, &b);
        for i in [0usize, 13, 63] {
            for j in 0..m {
                let want: f32 = (0..k).map(|p| a.at2(i, p) * b.at2(p, j)).sum();
                assert!((c.at2(i, j) - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bmm_and_bmm_tb() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let b = t(&[1.0, 0.0, 0.0, 1.0], &[1, 2, 2]);
        assert_eq!(bmm(&a, &b, false).data(), &[1.0, 2.0, 3.0, 4.0]);
        // tb: B interpreted [b, m, k] and transposed
        let bt = t(&[0.0, 1.0, 1.0, 0.0], &[1, 2, 2]);
        assert_eq!(bmm(&a, &bt, true).data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn bmm_at_matches_manual() {
        // A [1, 2 (n), 3 (k)], B [1, 2 (n), 1 (m)] -> [1, 3, 1]
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]);
        let b = t(&[1.0, 2.0], &[1, 2, 1]);
        let c = bmm_at(&a, &b);
        assert_eq!(c.shape(), &[1, 3, 1]);
        assert_eq!(c.data(), &[9.0, 12.0, 15.0]); // 1*1+4*2, 2+5*2, 3+6*2
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = softmax_lastdim(&x);
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // softmax is shift invariant
        let y = x.map(|v| v + 100.0);
        assert!(softmax_lastdim(&y).allclose(&s, 1e-5));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = t(&[0.5, -1.5, 2.0], &[1, 3]);
        let ls = log_softmax_lastdim(&x);
        let s = softmax_lastdim(&x);
        for i in 0..3 {
            assert!((ls.data()[i].exp() - s.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn gelu_reference_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // finite-difference check of the gradient
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let eps = 1e-3;
            let fd = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: {} vs {}",
                gelu_grad(x),
                fd
            );
        }
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
    }

    #[test]
    fn transpose12_roundtrip() {
        let x = t(&(0..24).map(|v| v as f32).collect::<Vec<_>>(), &[2, 3, 4]);
        let y = transpose12(&x);
        assert_eq!(y.shape(), &[2, 4, 3]);
        let z = transpose12(&y);
        assert!(z.allclose(&x, 0.0));
    }

    #[test]
    fn head_split_merge_roundtrip() {
        let x = t(&(0..24).map(|v| v as f32).collect::<Vec<_>>(), &[6, 4]); // r=3,n=2,h=2,dh=2
        let s = split_heads(&x, 2, 2);
        assert_eq!(s.shape(), &[6, 2, 2]);
        let m = merge_heads(&s, 2);
        assert!(m.reshape(&[6, 4]).allclose(&x, 0.0));
    }

    #[test]
    fn split_heads_layout() {
        // r=1, n=2 neighbors, h=2 heads, dh=1
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let s = split_heads(&x, 2, 2);
        // head 0: rows [1,3]; head 1: rows [2,4]
        assert_eq!(s.data(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn mean_tokens_simple() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let m = mean_tokens(&x);
        assert_eq!(m.shape(), &[1, 2]);
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    fn gather_rows_copies() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = gather_rows(&x, &[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let g = Tensor::ones(&[4]);
        let b = Tensor::zeros(&[4]);
        let (out, xhat, rstd) = layer_norm(&x, &g, &b, 1e-5);
        let mean: f32 = out.data().iter().sum::<f32>() / 4.0;
        let var: f32 = out
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
        assert_eq!(out.data(), xhat.data());
        assert_eq!(rstd.len(), 1);
    }
}
