//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the single storage type used throughout taser-rs: a flat
//! `Vec<f32>` plus a shape. All autograd ops in [`crate::graph`] produce and
//! consume `Tensor`s; the raw compute kernels live in [`crate::ops`].

use rayon::prelude::*;
use std::fmt;

/// Element count above which element-wise ops fan out to rayon. Retuned
/// from 65_536 to 32_768 for the persistent pool (PR 5): fan-out now costs
/// a queue push instead of thread spawns, so the crossover where splitting
/// an element-wise pass beats running it inline moves down (measured in
/// `BENCH_pool.json`'s micro/meso rows; see EXPERIMENTS.md).
const PAR_ELEM_THRESHOLD: usize = 32_768;
const PAR_CHUNK: usize = 16_384;

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// Invariant: `data.len() == shape.iter().product()`. Rank-0 tensors are not
/// supported; scalars are represented as shape `[1]`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Builds a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if the element count does not match the shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        assert!(!shape.is_empty(), "rank-0 tensors are not supported");
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            data: vec![0.0; numel],
            shape: shape.to_vec(),
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor {
            data: vec![value; numel],
            shape: shape.to_vec(),
        }
    }

    /// A scalar tensor of shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: vec![1],
        }
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of rows when viewed as 2-D (product of all leading dims).
    #[inline]
    pub fn rows(&self) -> usize {
        self.numel() / self.last_dim()
    }

    /// Size of the trailing dimension.
    #[inline]
    pub fn last_dim(&self) -> usize {
        *self.shape.last().expect("tensor has at least rank 1")
    }

    /// Immutable view of the flat data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a 2-D index. Only valid for rank-2 tensors.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Scalar value of a shape-`[1]` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.data[0]
    }

    /// Returns the same data under a new shape (row-major reinterpretation).
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.numel(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape: shape.to_vec(),
        }
    }

    /// In-place element-wise addition. Shapes must match exactly.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaled addition `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|a| *a = value);
    }

    /// Returns a new tensor with `f` applied element-wise (parallel for
    /// large tensors).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data = self.data.clone();
        if data.len() >= PAR_ELEM_THRESHOLD {
            data.par_chunks_mut(PAR_CHUNK).for_each(|chunk| {
                for x in chunk {
                    *x = f(*x);
                }
            });
        } else {
            for x in &mut data {
                *x = f(*x);
            }
        }
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Element-wise combination of two same-shape tensors (parallel for
    /// large tensors).
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let mut data = self.data.clone();
        if data.len() >= PAR_ELEM_THRESHOLD {
            data.par_chunks_mut(PAR_CHUNK)
                .zip(other.data.par_chunks(PAR_CHUNK))
                .for_each(|(chunk, bs)| {
                    for (x, &b) in chunk.iter_mut().zip(bs.iter()) {
                        *x = f(*x, b);
                    }
                });
        } else {
            for (x, &b) in data.iter_mut().zip(other.data.iter()) {
                *x = f(*x, b);
            }
        }
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0 for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element, or 0 for empty tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// True when both tensors have identical shapes and all elements differ by
    /// at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// A contiguous slice of rows `[start, end)` when viewed as 2-D.
    pub fn rows_slice(&self, start: usize, end: usize) -> Tensor {
        let d = self.last_dim();
        assert!(start <= end && end <= self.rows());
        Tensor {
            data: self.data[start * d..end * d].to_vec(),
            shape: vec![end - start, d],
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, .., {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.last_dim(), 3);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn mismatched_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full_scalar() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic]
    fn reshape_wrong_count_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.reshape(&[3]);
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[16.0, 32.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[4.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert!((t.mean()).abs() < 1e-6);
        assert_eq!(t.max_abs(), 3.0);
        assert!((t.norm() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0005, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-5));
        let c = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        assert!(!a.allclose(&c, 1.0), "different shapes are never close");
    }

    #[test]
    fn rows_slice_extracts_contiguous_rows() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let s = t.rows_slice(1, 3);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn finite_check() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }
}
