//! Finite-difference gradient checking, shared by every crate's tests.

use crate::graph::{Graph, VarId};
use crate::tensor::Tensor;

/// Deterministic test tensors with magnitudes in `[0.3, 1.3]` — bounded away
/// from zero so kinked activations (ReLU, LeakyReLU) don't sit on their
/// non-differentiable point.
fn seeded_inputs(shapes: &[&[usize]], seed: u64) -> Vec<Tensor> {
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 24) as f32
    };
    shapes
        .iter()
        .map(|shape| {
            let n: usize = shape.iter().product();
            let data: Vec<f32> = (0..n)
                .map(|_| {
                    let mag = 0.3 + next();
                    if next() < 0.5 {
                        -mag
                    } else {
                        mag
                    }
                })
                .collect();
            Tensor::from_vec(data, shape)
        })
        .collect()
}

/// Checks analytic gradients of `f` (which must return a scalar var) against
/// central finite differences at every coordinate of every input.
///
/// Inputs are deterministic functions of `seed`. `tol` is a combined
/// absolute/relative tolerance: the check fails when
/// `|analytic - fd| > tol * max(1, |analytic|, |fd|)`.
///
/// # Panics
/// Panics (with coordinates) on the first mismatching entry.
pub fn gradcheck(
    shapes: &[&[usize]],
    f: impl Fn(&mut Graph, &[VarId]) -> VarId,
    tol: f32,
    seed: u64,
) {
    let inputs = seeded_inputs(shapes, seed);

    // Analytic gradients.
    let mut g = Graph::new();
    let vars: Vec<VarId> = inputs.iter().map(|t| g.leaf(t.clone())).collect();
    let loss = f(&mut g, &vars);
    assert_eq!(g.data(loss).numel(), 1, "gradcheck target must be scalar");
    g.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs.iter())
        .map(|(&v, t)| {
            g.grad(v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(t.shape()))
        })
        .collect();

    let eval = |perturbed: &[Tensor]| -> f32 {
        let mut g = Graph::new();
        let vars: Vec<VarId> = perturbed.iter().map(|t| g.leaf(t.clone())).collect();
        let l = f(&mut g, &vars);
        g.data(l).item()
    };

    let eps = 1e-2f32;
    for (ti, input) in inputs.iter().enumerate() {
        for ci in 0..input.numel() {
            let mut plus = inputs.clone();
            plus[ti].data_mut()[ci] += eps;
            let mut minus = inputs.clone();
            minus[ti].data_mut()[ci] -= eps;
            let fd = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let ana = analytic[ti].data()[ci];
            let scale = 1.0f32.max(ana.abs()).max(fd.abs());
            assert!(
                (ana - fd).abs() <= tol * scale,
                "gradcheck failed at input {ti} coord {ci}: analytic {ana} vs fd {fd}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_on_simple_quadratic() {
        gradcheck(
            &[&[2, 2]],
            |g, vars| {
                let sq = g.square(vars[0]);
                g.sum_all(sq)
            },
            1e-3,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "gradcheck failed")]
    fn catches_wrong_gradient() {
        // exp's true derivative is exp(x); pretend the loss is sum(exp) but
        // sneak in a detach so the analytic gradient is zero.
        gradcheck(
            &[&[2]],
            |g, vars| {
                let d = g.detach(vars[0]);
                let e = g.exp(d);
                g.sum_all(e)
            },
            1e-3,
            2,
        );
    }

    #[test]
    fn deterministic_inputs() {
        let a = seeded_inputs(&[&[4]], 9);
        let b = seeded_inputs(&[&[4]], 9);
        assert_eq!(a[0].data(), b[0].data());
        let c = seeded_inputs(&[&[4]], 10);
        assert_ne!(a[0].data(), c[0].data());
    }
}
