//! # taser-tensor
//!
//! The compute substrate of taser-rs: dense `f32` tensors, a tape-based
//! reverse-mode autograd engine, neural-network layers, and an Adam
//! optimizer. The TASER paper runs on PyTorch + CUDA; this crate replaces
//! that stack with a self-contained CPU implementation whose matrix kernels
//! parallelize with rayon.
//!
//! Layout of the crate:
//!
//! * [`tensor`] — the dense [`Tensor`] storage type.
//! * [`ops`] — raw kernels (matmul, bmm, softmax, layer norm, head packing).
//! * [`graph`] — the autograd tape: [`Graph`], [`VarId`], ~30 differentiable ops.
//! * [`infer`] — the tape-free inference path: the [`InferCtx`] bump arena
//!   and packed-weight layer kernels (zero allocations per batch after
//!   warmup).
//! * [`nn`] — layers: [`nn::Linear`], [`nn::Mlp`], [`nn::LayerNorm`],
//!   [`nn::MixerBlock`] (the MLP-Mixer used by GraphMixer and by TASER's
//!   neighbor decoder).
//! * [`optim`] — [`ParamStore`] + Adam/SGD.
//! * [`init`] — deterministic initializers.
//! * [`gradcheck`] — finite-difference gradient checking used across the
//!   workspace's test suites.
//!
//! ```
//! use taser_tensor::{Graph, ParamStore, Tensor, nn::Linear};
//!
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "proj", 4, 2, 42);
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::ones(&[3, 4]));
//! let y = layer.forward(&mut g, &store, x);
//! assert_eq!(g.shape(y), &[3, 2]);
//! ```

pub mod gradcheck;
pub mod graph;
pub mod infer;
pub mod init;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod tensor;

pub use graph::{Graph, VarId};
pub use infer::{InferCtx, Slot};
pub use optim::{AdamConfig, ParamId, ParamStore};
pub use tensor::Tensor;
