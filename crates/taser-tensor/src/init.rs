//! Deterministic weight initializers.
//!
//! All initializers take an explicit seed so model construction is exactly
//! reproducible across runs and platforms.

use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Xavier/Glorot uniform for a `[fan_in, fan_out]` weight matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, seed)
}

/// Kaiming/He uniform for ReLU-family networks.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let bound = (3.0f32 / fan_in as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, seed)
}

/// Uniform init over `[lo, hi)`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(lo, hi);
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| dist.sample(&mut rng)).collect(), shape)
}

/// Gaussian init via Box-Muller (keeps us off rand_distr).
pub fn normal(shape: &[usize], mean: f32, std: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Uniform::new(f32::EPSILON, 1.0f32);
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = dist.sample(&mut rng);
        let u2: f32 = dist.sample(&mut rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let t = xavier_uniform(100, 100, 1);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.max_abs() <= bound);
        assert!(t.max_abs() > bound * 0.5, "suspiciously small spread");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            uniform(&[8], 0.0, 1.0, 3).data(),
            uniform(&[8], 0.0, 1.0, 3).data()
        );
        assert_ne!(
            uniform(&[8], 0.0, 1.0, 3).data(),
            uniform(&[8], 0.0, 1.0, 4).data()
        );
    }

    #[test]
    fn normal_moments() {
        let t = normal(&[10_000], 2.0, 0.5, 11);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 0.25).abs() < 0.05, "var {var}");
    }

    #[test]
    fn kaiming_bound() {
        let t = kaiming_uniform(64, 32, 5);
        assert!(t.max_abs() <= (3.0f32 / 64.0).sqrt());
    }
}
