//! Reusable neural-network layers built on the autograd tape.
//!
//! Layers own [`ParamId`]s inside a shared [`ParamStore`] and expose
//! `forward(&self, g: &mut Graph, x: VarId) -> VarId`. Construction seeds are
//! explicit for reproducibility.

use crate::graph::{Graph, VarId};
use crate::init;
use crate::optim::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Fully-connected layer `y = x·W (+ b)`.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer with bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        seed: u64,
    ) -> Self {
        Self::with_bias(store, name, in_dim, out_dim, true, seed)
    }

    /// Creates a zero-initialized linear layer (weight and bias all zero),
    /// optionally without bias. The layer outputs exactly zero until its
    /// first optimizer step while still receiving gradients (`dL/dW = xᵀg`
    /// does not depend on `W`) — the standard init for policy/scoring heads
    /// that must start from a uniform distribution.
    pub fn zeros(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(format!("{name}.w"), Tensor::zeros(&[in_dim, out_dim]));
        let b = bias.then(|| store.add(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Creates a linear layer, optionally without bias.
    pub fn with_bias(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        seed: u64,
    ) -> Self {
        let w = store.add(
            format!("{name}.w"),
            init::xavier_uniform(in_dim, out_dim, seed),
        );
        let b = bias.then(|| store.add(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a `[.., in_dim]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: VarId) -> VarId {
        let rows = g.data(x).rows();
        let x2 = if g.shape(x).len() == 2 {
            x
        } else {
            g.reshape(x, &[rows, self.in_dim])
        };
        let w = g.param(store, self.w);
        let mut y = g.matmul(x2, w);
        if let Some(b) = self.b {
            let bv = g.param(store, b);
            y = g.add_bias(y, bv);
        }
        y
    }

    /// Parameter handle of the weight matrix.
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Parameter handle of the bias, if present.
    pub fn bias(&self) -> Option<ParamId> {
        self.b
    }
}

/// Two-layer MLP with GeLU, the building block of both the MLP-Mixer and the
/// TGAT output head.
pub struct Mlp {
    /// First projection (`in_dim -> hidden`).
    pub fc1: Linear,
    /// Second projection (`hidden -> out_dim`).
    pub fc2: Linear,
}

impl Mlp {
    /// `in_dim -> hidden -> out_dim` with GeLU between.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        seed: u64,
    ) -> Self {
        Mlp {
            fc1: Linear::new(store, &format!("{name}.fc1"), in_dim, hidden, seed),
            fc2: Linear::new(
                store,
                &format!("{name}.fc2"),
                hidden,
                out_dim,
                seed ^ 0xA5A5,
            ),
        }
    }

    /// Applies the MLP to a `[.., in_dim]` input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: VarId) -> VarId {
        let h = self.fc1.forward(g, store, x);
        let h = g.gelu(h);
        self.fc2.forward(g, store, h)
    }
}

/// LayerNorm with learnable affine transform.
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    eps: f32,
    /// Normalized (trailing) dimension.
    pub dim: usize,
}

impl LayerNorm {
    /// Creates a LayerNorm over the trailing `dim` entries.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: store.add(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: store.add(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
            dim,
        }
    }

    /// Applies normalization over the trailing dimension.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: VarId) -> VarId {
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    /// Parameter handle of the scale vector.
    pub fn gamma_id(&self) -> ParamId {
        self.gamma
    }

    /// Parameter handle of the shift vector.
    pub fn beta_id(&self) -> ParamId {
        self.beta
    }

    /// Variance fuzz term.
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

/// One MLP-Mixer block (Tolstikhin et al.): token mixing across the
/// neighborhood dimension followed by channel mixing, both with residuals.
///
/// Used as the GraphMixer temporal aggregator (Eq. 9) and as the neighbor
/// decoder backbone of the adaptive sampler (Eq. 16).
pub struct MixerBlock {
    ln_token: LayerNorm,
    ln_chan: LayerNorm,
    /// MLP applied across the token (neighbor) dimension.
    pub token_mlp: Mlp,
    /// MLP applied across the channel dimension.
    pub chan_mlp: Mlp,
    /// Number of tokens (neighbors) the block was built for.
    pub tokens: usize,
    /// Channel dimension.
    pub dim: usize,
}

impl MixerBlock {
    /// A mixer block for `[b, tokens, dim]` inputs. `token_hidden` and
    /// `chan_hidden` size the two internal MLPs (the paper uses a 1-layer
    /// mixer with 0.5x/4x expansion conventions; we default callers to
    /// `tokens/2` and `dim*2`).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        tokens: usize,
        dim: usize,
        token_hidden: usize,
        chan_hidden: usize,
        seed: u64,
    ) -> Self {
        MixerBlock {
            ln_token: LayerNorm::new(store, &format!("{name}.ln_token"), dim),
            ln_chan: LayerNorm::new(store, &format!("{name}.ln_chan"), dim),
            token_mlp: Mlp::new(
                store,
                &format!("{name}.token"),
                tokens,
                token_hidden,
                tokens,
                seed,
            ),
            chan_mlp: Mlp::new(
                store,
                &format!("{name}.chan"),
                dim,
                chan_hidden,
                dim,
                seed ^ 0x5A5A,
            ),
            tokens,
            dim,
        }
    }

    /// The token-mixing LayerNorm.
    pub fn ln_token(&self) -> &LayerNorm {
        &self.ln_token
    }

    /// The channel-mixing LayerNorm.
    pub fn ln_chan(&self) -> &LayerNorm {
        &self.ln_chan
    }

    /// Applies the block to `[b, tokens, dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: VarId) -> VarId {
        let shp = g.shape(x).to_vec();
        assert_eq!(shp.len(), 3, "MixerBlock expects [b, tokens, dim]");
        assert_eq!(shp[1], self.tokens, "token count mismatch");
        assert_eq!(shp[2], self.dim, "channel dim mismatch");
        let b = shp[0];

        // Token mixing: LN -> transpose to [b, dim, tokens] -> MLP over tokens.
        let normed = self.ln_token.forward(g, store, x);
        let normed3 = g.reshape(normed, &[b, self.tokens, self.dim]);
        let t = g.transpose12(normed3); // [b, dim, tokens]
        let t2 = g.reshape(t, &[b * self.dim, self.tokens]);
        let mixed = self.token_mlp.forward(g, store, t2);
        let mixed3 = g.reshape(mixed, &[b, self.dim, self.tokens]);
        let back = g.transpose12(mixed3); // [b, tokens, dim]
        let x1 = g.add(x, back);

        // Channel mixing: LN -> MLP over channels.
        let normed2 = self.ln_chan.forward(g, store, x1);
        let flat = g.reshape(normed2, &[b * self.tokens, self.dim]);
        let cm = self.chan_mlp.forward(g, store, flat);
        let cm3 = g.reshape(cm, &[b, self.tokens, self.dim]);
        g.add(x1, cm3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, 1);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[5, 4]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.shape(y), &[5, 3]);
    }

    #[test]
    fn linear_3d_input_flattens() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, 1);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2, 5, 4]));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.shape(y), &[10, 3]);
    }

    #[test]
    fn mlp_learns_xor_ish() {
        // tiny sanity: fit y = x0 * 2 - x1 with an MLP
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", 2, 8, 1, 3);
        let xs = Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[4, 2]);
        let ys = Tensor::from_vec(vec![0.0, 2.0, -1.0, 1.0], &[4, 1]);
        let cfg = AdamConfig {
            lr: 0.02,
            ..AdamConfig::default()
        };
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut g = Graph::new();
            let x = g.leaf(xs.clone());
            let pred = mlp.forward(&mut g, &store, x);
            let t = g.leaf(ys.clone());
            let diff = g.sub(pred, t);
            let sq = g.square(diff);
            let loss = g.mean_all(sq);
            last = g.data(loss).item();
            g.backward(loss);
            g.flush_grads(&mut store);
            store.adam_step(cfg);
        }
        assert!(last < 0.05, "MLP failed to fit: loss {last}");
    }

    #[test]
    fn layer_norm_normalizes() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(
            (0..16).map(|v| v as f32).collect(),
            &[2, 8],
        ));
        let y = ln.forward(&mut g, &store, x);
        for r in 0..2 {
            let row: Vec<f32> = (0..8).map(|c| g.data(y).at2(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn mixer_block_shape_preserving_and_trainable() {
        let mut store = ParamStore::new();
        let mixer = MixerBlock::new(&mut store, "mix", 4, 6, 2, 12, 5);
        let mut g = Graph::new();
        let x = g.leaf(init::uniform(&[3, 4, 6], -1.0, 1.0, 2));
        let y = mixer.forward(&mut g, &store, x);
        assert_eq!(g.shape(y), &[3, 4, 6]);
        let sq = g.square(y);
        let s = g.sum_all(sq);
        g.backward(s);
        g.flush_grads(&mut store);
        // gradient must reach the parameters through both residual branches
        assert!(store.grad_norm_total() > 0.0);
        // the token-mixing weight specifically must be trained
        let w = mixer.token_mlp.fc1.weight();
        assert!(store.grad(w).norm() > 0.0, "token MLP got no gradient");
    }
}
