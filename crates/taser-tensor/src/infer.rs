//! Tape-free inference: a bump-allocated scratch arena plus packed-weight
//! layer kernels.
//!
//! The autograd tape in [`crate::graph`] allocates per op — a fresh `Vec`
//! for every output, boxed backward closures, clones for identity ops. That
//! is the right trade for training and the wrong one for serving, where the
//! same shapes run millions of times. This module provides the inference
//! twin:
//!
//! * [`InferCtx`] — a bump arena of `f32` scratch. `alloc` hands out
//!   [`Slot`] handles from one backing buffer; [`InferCtx::reset`] rewinds
//!   the bump pointer between batches. After warmup (once the high-water
//!   mark stabilizes) a forward pass performs **zero heap allocations**.
//! * [`PackedLinear`] / [`PackedMlp`] / [`PackedLayerNorm`] /
//!   [`PackedMixerBlock`] — layer kernels whose weights were packed once
//!   (via the `pack` methods on [`crate::nn`] layers) into the
//!   register-tiled panel layout of [`crate::ops::PackedMatrix`] and are
//!   reused across every batch.
//!
//! Every kernel replicates the tape path's floating-point evaluation order
//! (ascending-`k` matmul accumulation, identical LayerNorm/softmax
//! formulas), so fast-path outputs are bit-compatible with the tape forward
//! — the differential suite in `tests/infer_equivalence.rs` holds them to
//! 1e-5.
//!
//! Kernels here are deliberately **sequential**: in the serving engine each
//! worker thread owns one `InferCtx`, and parallelism comes from running
//! many workers (and many batches) concurrently, not from fanning a single
//! small batch out over rayon.

use crate::nn::{LayerNorm, Linear, MixerBlock, Mlp};
use crate::ops::{self, PackedMatrix};
use crate::optim::ParamStore;

/// Default packed-panel width for inference weights: 16 lanes = two 256-bit
/// registers per accumulator row on the AVX2+FMA kernel, the fastest width
/// in the `infer_forward` blocking sweep (see EXPERIMENTS.md).
pub const INFER_PANEL: usize = 16;

/// Handle to a range of `f32` scratch inside an [`InferCtx`].
///
/// Slots are plain offsets — copyable, unaffected by arena growth, and
/// valid until the next [`InferCtx::reset`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    off: usize,
    len: usize,
}

impl Slot {
    /// Number of `f32` elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length slots (e.g. absent edge features).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A view of the leading `rows` rows of a `[.., d]` slot — no copy, the
    /// sub-slot aliases the same arena range. Used by the TGAT wiring where
    /// layer-2 inputs are exactly the hop-0 prefix of layer-1 outputs.
    #[inline]
    pub fn prefix_rows(&self, rows: usize, d: usize) -> Slot {
        debug_assert!(rows * d <= self.len);
        Slot {
            off: self.off,
            len: rows * d,
        }
    }

    /// A view of rows `[start, end)` of a `[.., d]` slot (no copy).
    #[inline]
    pub fn rows_view(&self, start: usize, end: usize, d: usize) -> Slot {
        debug_assert!(start <= end && end * d <= self.len);
        Slot {
            off: self.off + start * d,
            len: (end - start) * d,
        }
    }
}

/// Bump-allocated `f32` scratch arena for tape-free forward passes.
///
/// One `InferCtx` per worker thread; [`InferCtx::reset`] before each batch.
/// The backing buffer only grows (never shrinks), so once the workload's
/// peak footprint has been seen, steady-state batches are allocation-free —
/// asserted by `tests/zero_alloc.rs` with a counting allocator and
/// observable via [`InferCtx::grow_count`] / [`InferCtx::high_water`].
#[derive(Default)]
pub struct InferCtx {
    buf: Vec<f32>,
    off: usize,
    high_water: usize,
    grows: u64,
}

impl InferCtx {
    /// An empty arena (grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-sized to `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        InferCtx {
            buf: vec![0.0; cap],
            ..Self::default()
        }
    }

    /// Rewinds the bump pointer; previously returned [`Slot`]s are dead.
    #[inline]
    pub fn reset(&mut self) {
        self.off = 0;
    }

    /// Current bump offset (elements in use).
    #[inline]
    pub fn used(&self) -> usize {
        self.off
    }

    /// Peak bump offset ever reached (the arena watermark).
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of times the backing buffer had to grow. Stable after warmup.
    #[inline]
    pub fn grow_count(&self) -> u64 {
        self.grows
    }

    /// Allocates `len` elements. Contents are unspecified (stale scratch) —
    /// callers must fully overwrite, or use [`InferCtx::alloc_zeroed`].
    pub fn alloc(&mut self, len: usize) -> Slot {
        let off = self.off;
        let end = off + len;
        if end > self.buf.len() {
            self.grows += 1;
            self.buf.resize(end.next_power_of_two().max(1024), 0.0);
        }
        self.off = end;
        self.high_water = self.high_water.max(end);
        Slot { off, len }
    }

    /// Allocates `len` zero-filled elements.
    pub fn alloc_zeroed(&mut self, len: usize) -> Slot {
        let s = self.alloc(len);
        self.data_mut(s).fill(0.0);
        s
    }

    /// Allocates a slot holding a copy of `src`.
    pub fn slot_from(&mut self, src: &[f32]) -> Slot {
        let s = self.alloc(src.len());
        self.data_mut(s).copy_from_slice(src);
        s
    }

    /// Immutable view of a slot.
    #[inline]
    pub fn data(&self, s: Slot) -> &[f32] {
        &self.buf[s.off..s.off + s.len]
    }

    /// Mutable view of a slot.
    #[inline]
    pub fn data_mut(&mut self, s: Slot) -> &mut [f32] {
        &mut self.buf[s.off..s.off + s.len]
    }

    /// Allocates an output slot and returns `(slot, prefix, out)` where
    /// `prefix` covers every previously allocated slot (index it with
    /// [`InferCtx::view`]) and `out` is the fresh range. This is the borrow
    /// splitter every multi-input kernel builds on: bump allocation
    /// guarantees inputs precede outputs.
    pub fn alloc_out(&mut self, len: usize) -> (Slot, &[f32], &mut [f32]) {
        let s = self.alloc(len);
        let (head, tail) = self.buf.split_at_mut(s.off);
        (s, head, &mut tail[..len])
    }

    /// Resolves a slot inside a `prefix` returned by [`InferCtx::alloc_out`].
    #[inline]
    pub fn view(prefix: &[f32], s: Slot) -> &[f32] {
        &prefix[s.off..s.off + s.len]
    }

    // ---- generic kernels ----

    /// Column-concatenates `parts` (each `(slot, width)` with `rows` rows)
    /// into a `[rows, Σwidth]` slot.
    pub fn concat_cols(&mut self, parts: &[(Slot, usize)], rows: usize) -> Slot {
        let total: usize = parts.iter().map(|&(_, w)| w).sum();
        let (out, prefix, od) = self.alloc_out(rows * total);
        let mut off = 0;
        for &(p, w) in parts {
            let pd = Self::view(prefix, p);
            debug_assert_eq!(pd.len(), rows * w, "concat_cols part size");
            for r in 0..rows {
                od[r * total + off..r * total + off + w].copy_from_slice(&pd[r * w..(r + 1) * w]);
            }
            off += w;
        }
        out
    }

    /// Gathers rows of a `[.., d]` slot: `out[i] = src[idx[i]]`.
    pub fn gather_rows(&mut self, src: Slot, d: usize, idx: &[usize]) -> Slot {
        let (out, prefix, od) = self.alloc_out(idx.len() * d);
        let sd = Self::view(prefix, src);
        for (i, &j) in idx.iter().enumerate() {
            od[i * d..(i + 1) * d].copy_from_slice(&sd[j * d..(j + 1) * d]);
        }
        out
    }

    /// Element-wise sum of two same-length slots into a new slot.
    pub fn add(&mut self, a: Slot, b: Slot) -> Slot {
        debug_assert_eq!(a.len, b.len, "add length mismatch");
        let (out, prefix, od) = self.alloc_out(a.len);
        let ad = Self::view(prefix, a);
        let bd = Self::view(prefix, b);
        for ((o, &x), &y) in od.iter_mut().zip(ad).zip(bd) {
            *o = x + y;
        }
        out
    }

    /// In-place GeLU (same [`ops::gelu`] the tape uses).
    pub fn gelu_inplace(&mut self, s: Slot) {
        for v in self.data_mut(s) {
            *v = ops::gelu(*v);
        }
    }

    /// Permutes `[b, n, d]` to `[b, d, n]` into a new slot.
    pub fn transpose12(&mut self, s: Slot, b: usize, n: usize, d: usize) -> Slot {
        let (out, prefix, od) = self.alloc_out(b * d * n);
        let sd = Self::view(prefix, s);
        for bi in 0..b {
            let xs = &sd[bi * n * d..(bi + 1) * n * d];
            let slab = &mut od[bi * d * n..(bi + 1) * d * n];
            for i in 0..n {
                for j in 0..d {
                    slab[j * n + i] = xs[i * d + j];
                }
            }
        }
        out
    }

    /// Mean over the token dimension: `[b, n, d] -> [b, d]` (same
    /// accumulate-then-scale order as [`ops::mean_tokens`]).
    pub fn mean_tokens(&mut self, s: Slot, b: usize, n: usize, d: usize) -> Slot {
        let (out, prefix, od) = self.alloc_out(b * d);
        let sd = Self::view(prefix, s);
        od.fill(0.0);
        let inv = 1.0 / n as f32;
        for bi in 0..b {
            let slab = &sd[bi * n * d..(bi + 1) * n * d];
            let orow = &mut od[bi * d..(bi + 1) * d];
            for i in 0..n {
                for (o, &v) in orow.iter_mut().zip(slab[i * d..(i + 1) * d].iter()) {
                    *o += v;
                }
            }
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
        out
    }

    /// Row-wise softmax over trailing dimension `d`, in place (same
    /// stabilized formula as [`ops::softmax_lastdim`]).
    pub fn softmax_rows_inplace(&mut self, s: Slot, d: usize) {
        for row in self.data_mut(s).chunks_mut(d) {
            let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - maxv).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    }
}

/// 4-way reassociated reduction: four independent accumulator lanes broken
/// out of the sequential sum so the adds pipeline instead of chaining.
#[inline]
fn lane_sum(xs: &[f32], f: impl Fn(f32) -> f32) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut chunks = xs.chunks_exact(4);
    for c in chunks.by_ref() {
        for j in 0..4 {
            acc[j] += f(c[j]);
        }
    }
    let tail: f32 = chunks.remainder().iter().map(|&v| f(v)).sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// A [`Linear`] layer with its weight pre-packed and bias copied out of the
/// [`ParamStore`] — built once at model load via [`Linear::pack`].
pub struct PackedLinear {
    w: PackedMatrix,
    bias: Option<Vec<f32>>,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
}

impl PackedLinear {
    /// Packs weight (and bias) tensors. `nr` is the *preferred* panel
    /// width; narrow layers clamp it to the smallest width covering
    /// `out_dim` so a 5-wide token MLP does not burn 11 of 16 FMA lanes
    /// per step on zero padding.
    pub fn new(
        weight: &crate::tensor::Tensor,
        bias: Option<&crate::tensor::Tensor>,
        nr: usize,
    ) -> Self {
        assert_eq!(weight.shape().len(), 2, "linear weight must be rank-2");
        let (in_dim, out_dim) = (weight.shape()[0], weight.shape()[1]);
        let fitted = [4usize, 8, 16]
            .into_iter()
            .find(|&w| w >= out_dim)
            .unwrap_or(nr)
            .min(nr);
        PackedLinear {
            w: PackedMatrix::from_tensor(weight, fitted),
            bias: bias.map(|b| b.data().to_vec()),
            in_dim,
            out_dim,
        }
    }

    /// `y = x·W (+ b)` for a `[rows, in_dim]` slot, bias fused into the
    /// matmul epilogue.
    pub fn forward(&self, ctx: &mut InferCtx, x: Slot, rows: usize) -> Slot {
        debug_assert_eq!(x.len(), rows * self.in_dim, "packed linear input");
        let (out, prefix, od) = ctx.alloc_out(rows * self.out_dim);
        ops::matmul_packed_infer_into(
            InferCtx::view(prefix, x),
            rows,
            self.in_dim,
            &self.w,
            self.bias.as_deref(),
            od,
        );
        out
    }

    /// Padded-row-skipping variant of [`PackedLinear::forward`]: rows with
    /// `valid(i) == false` are zero-filled without touching the weights,
    /// and the valid rows run through the packed kernel in maximal
    /// contiguous runs. The kernel computes every output row independently
    /// (its register tiles never mix rows' accumulators), so each valid
    /// row's result is **bit-identical** to the dense forward regardless of
    /// how the runs split. Callers are responsible for only skipping rows
    /// whose outputs are never consumed with nonzero weight — e.g. masked
    /// neighbor slots, whose attention weight underflows to exactly `0.0`.
    ///
    /// Allocation-free apart from the output slot (the serving zero-alloc
    /// contract): validity is a predicate, not a materialized mask.
    pub fn forward_valid(
        &self,
        ctx: &mut InferCtx,
        x: Slot,
        rows: usize,
        valid: impl Fn(usize) -> bool,
    ) -> Slot {
        debug_assert_eq!(x.len(), rows * self.in_dim, "packed linear input");
        let (out, prefix, od) = ctx.alloc_out(rows * self.out_dim);
        let xd = InferCtx::view(prefix, x);
        let (k, m) = (self.in_dim, self.out_dim);
        let mut i = 0;
        while i < rows {
            if !valid(i) {
                od[i * m..(i + 1) * m].fill(0.0);
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < rows && valid(j) {
                j += 1;
            }
            ops::matmul_packed_infer_into(
                &xd[i * k..j * k],
                j - i,
                k,
                &self.w,
                self.bias.as_deref(),
                &mut od[i * m..j * m],
            );
            i = j;
        }
        out
    }
}

/// Packed two-layer MLP with GeLU (twin of [`Mlp`]).
pub struct PackedMlp {
    /// First projection.
    pub fc1: PackedLinear,
    /// Second projection.
    pub fc2: PackedLinear,
}

impl PackedMlp {
    /// Applies `fc2(gelu(fc1(x)))` to a `[rows, in_dim]` slot.
    pub fn forward(&self, ctx: &mut InferCtx, x: Slot, rows: usize) -> Slot {
        let h = self.fc1.forward(ctx, x, rows);
        ctx.gelu_inplace(h);
        self.fc2.forward(ctx, h, rows)
    }

    /// Padded-row-skipping twin of [`PackedMlp::forward`]: invalid rows come
    /// out exactly zero, valid rows are bit-identical to the dense pass
    /// (see [`PackedLinear::forward_valid`]; `gelu(0) = 0`, so the
    /// activation keeps skipped rows zero between the two projections).
    pub fn forward_valid(
        &self,
        ctx: &mut InferCtx,
        x: Slot,
        rows: usize,
        valid: impl Fn(usize) -> bool,
    ) -> Slot {
        let h = self.fc1.forward_valid(ctx, x, rows, &valid);
        ctx.gelu_inplace(h);
        self.fc2.forward_valid(ctx, h, rows, &valid)
    }
}

/// LayerNorm with its affine parameters copied out of the store.
pub struct PackedLayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
    /// Normalized (trailing) dimension.
    pub dim: usize,
}

impl PackedLayerNorm {
    /// Copies the affine parameters.
    pub fn new(gamma: &crate::tensor::Tensor, beta: &crate::tensor::Tensor, eps: f32) -> Self {
        let dim = gamma.numel();
        assert_eq!(beta.numel(), dim, "layer norm affine dims");
        PackedLayerNorm {
            gamma: gamma.data().to_vec(),
            beta: beta.data().to_vec(),
            eps,
            dim,
        }
    }

    /// Normalizes each trailing-`dim` row. Same formula as
    /// [`ops::layer_norm`], but the mean/variance reductions run as 4-way
    /// partial sums — reassociation the sequential tape sum cannot do —
    /// trading a ~1e-7 numeric difference (inside the 1e-5 fast-vs-tape
    /// budget) for breaking the add-latency chain.
    pub fn forward(&self, ctx: &mut InferCtx, x: Slot) -> Slot {
        let d = self.dim;
        let (out, prefix, od) = ctx.alloc_out(x.len());
        let xd = InferCtx::view(prefix, x);
        for (orow, xrow) in od.chunks_mut(d).zip(xd.chunks(d)) {
            let mean = lane_sum(xrow, |v| v) / d as f32;
            let var = lane_sum(xrow, |v| (v - mean) * (v - mean)) / d as f32;
            let r = 1.0 / (var + self.eps).sqrt();
            for j in 0..d {
                orow[j] = (xrow[j] - mean) * r * self.gamma[j] + self.beta[j];
            }
        }
        out
    }
}

/// Packed MLP-Mixer block (twin of [`MixerBlock`]).
pub struct PackedMixerBlock {
    ln_token: PackedLayerNorm,
    ln_chan: PackedLayerNorm,
    token_mlp: PackedMlp,
    chan_mlp: PackedMlp,
    /// Token (neighbor) count the block was built for.
    pub tokens: usize,
    /// Channel dimension.
    pub dim: usize,
}

impl PackedMixerBlock {
    /// Assembles a packed block from packed parts.
    pub fn from_parts(
        ln_token: PackedLayerNorm,
        ln_chan: PackedLayerNorm,
        token_mlp: PackedMlp,
        chan_mlp: PackedMlp,
        tokens: usize,
        dim: usize,
    ) -> Self {
        PackedMixerBlock {
            ln_token,
            ln_chan,
            token_mlp,
            chan_mlp,
            tokens,
            dim,
        }
    }

    /// Token mixing + channel mixing with residuals over a `[b, tokens, dim]`
    /// slot — step-for-step the tape [`MixerBlock::forward`].
    pub fn forward(&self, ctx: &mut InferCtx, x: Slot, b: usize) -> Slot {
        let (n, d) = (self.tokens, self.dim);
        debug_assert_eq!(x.len(), b * n * d, "mixer block input");
        // Token mixing: LN -> [b, d, n] -> MLP over tokens -> back -> +x
        let normed = self.ln_token.forward(ctx, x);
        let t = ctx.transpose12(normed, b, n, d);
        let mixed = self.token_mlp.forward(ctx, t, b * d);
        let back = ctx.transpose12(mixed, b, d, n);
        let x1 = ctx.add(x, back);
        // Channel mixing: LN -> MLP over channels -> +x1
        let normed2 = self.ln_chan.forward(ctx, x1);
        let cm = self.chan_mlp.forward(ctx, normed2, b * n);
        ctx.add(x1, cm)
    }
}

impl Linear {
    /// Packs this layer's parameters for the tape-free path.
    pub fn pack(&self, store: &ParamStore, nr: usize) -> PackedLinear {
        PackedLinear::new(
            store.value(self.weight()),
            self.bias().map(|b| store.value(b)),
            nr,
        )
    }
}

impl Mlp {
    /// Packs both projections.
    pub fn pack(&self, store: &ParamStore, nr: usize) -> PackedMlp {
        PackedMlp {
            fc1: self.fc1.pack(store, nr),
            fc2: self.fc2.pack(store, nr),
        }
    }
}

impl LayerNorm {
    /// Copies the affine parameters out of the store.
    pub fn pack(&self, store: &ParamStore) -> PackedLayerNorm {
        PackedLayerNorm::new(
            store.value(self.gamma_id()),
            store.value(self.beta_id()),
            self.eps(),
        )
    }
}

impl MixerBlock {
    /// Packs the whole block.
    pub fn pack(&self, store: &ParamStore, nr: usize) -> PackedMixerBlock {
        PackedMixerBlock::from_parts(
            self.ln_token().pack(store),
            self.ln_chan().pack(store),
            self.token_mlp.pack(store, nr),
            self.chan_mlp.pack(store, nr),
            self.tokens,
            self.dim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::init;
    use crate::tensor::Tensor;

    #[test]
    fn arena_reuses_backing_storage() {
        let mut ctx = InferCtx::new();
        for round in 0..5 {
            ctx.reset();
            let a = ctx.alloc_zeroed(100);
            let b = ctx.slot_from(&[1.0; 50]);
            assert_eq!(ctx.data(a).len(), 100);
            assert_eq!(ctx.data(b)[0], 1.0);
            if round == 0 {
                assert!(ctx.grow_count() >= 1);
            }
        }
        let grows = ctx.grow_count();
        assert_eq!(ctx.high_water(), 150);
        for _ in 0..10 {
            ctx.reset();
            let _ = ctx.alloc(150);
        }
        assert_eq!(ctx.grow_count(), grows, "steady state must not grow");
    }

    #[test]
    fn slot_views_alias_without_copy() {
        let mut ctx = InferCtx::new();
        let s = ctx.slot_from(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]); // [3, 2]
        let head = s.prefix_rows(2, 2);
        assert_eq!(ctx.data(head), &[0.0, 1.0, 2.0, 3.0]);
        let tail = s.rows_view(1, 3, 2);
        assert_eq!(ctx.data(tail), &[2.0, 3.0, 4.0, 5.0]);
    }

    /// Element-wise tolerance check: the packed path may use the FMA kernel
    /// (one rounding per accumulation step) while the tape uses the
    /// portable, machine-independent kernel — agreement is ≤1e-5, not
    /// bit-exact.
    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() <= 1e-5, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn packed_linear_matches_tape_linear() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 7, 5, 3);
        let x = init::uniform(&[9, 7], -1.0, 1.0, 11);
        let mut g = Graph::inference();
        let xv = g.leaf(x.clone());
        let want = lin.forward(&mut g, &store, xv);
        for nr in [4usize, 8, 16] {
            let packed = lin.pack(&store, nr);
            let mut ctx = InferCtx::new();
            let xs = ctx.slot_from(x.data());
            let got = packed.forward(&mut ctx, xs, 9);
            assert_close(ctx.data(got), g.data(want).data(), "linear");
        }
    }

    #[test]
    fn forward_valid_skips_rows_bit_exactly() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 6, 9, 3);
        let mlp = Mlp::new(&mut store, "m", 6, 12, 9, 5);
        let x = init::uniform(&[11, 6], -1.0, 1.0, 17);
        // alternating and clustered invalid rows: exercises run splitting at
        // every boundary shape (head, middle, tail, singleton runs)
        for pattern in [
            [true; 11],
            [false; 11],
            [
                true, false, true, true, false, false, true, true, true, false, true,
            ],
        ] {
            let packed = lin.pack(&store, 8);
            let pmlp = mlp.pack(&store, 8);
            let mut ctx = InferCtx::new();
            let xs = ctx.slot_from(x.data());
            let dense = packed.forward(&mut ctx, xs, 11);
            let sparse = packed.forward_valid(&mut ctx, xs, 11, |i| pattern[i]);
            let mdense = pmlp.forward(&mut ctx, xs, 11);
            let msparse = pmlp.forward_valid(&mut ctx, xs, 11, |i| pattern[i]);
            for (i, &keep) in pattern.iter().enumerate() {
                let (d, s) = (
                    &ctx.data(dense)[i * 9..][..9],
                    &ctx.data(sparse)[i * 9..][..9],
                );
                let (md, ms) = (
                    &ctx.data(mdense)[i * 9..][..9],
                    &ctx.data(msparse)[i * 9..][..9],
                );
                if keep {
                    assert_eq!(d, s, "valid row {i} must be bit-identical");
                    assert_eq!(md, ms, "valid mlp row {i} must be bit-identical");
                } else {
                    assert!(s.iter().all(|&v| v == 0.0), "skipped row {i} must be zero");
                    assert!(
                        ms.iter().all(|&v| v == 0.0),
                        "skipped mlp row {i} must be zero"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_mlp_and_layernorm_match_tape() {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", 6, 10, 4, 5);
        let ln = LayerNorm::new(&mut store, "ln", 6);
        let x = init::uniform(&[8, 6], -2.0, 2.0, 3);
        let mut g = Graph::inference();
        let xv = g.leaf(x.clone());
        let ln_want = ln.forward(&mut g, &store, xv);
        let mlp_want = mlp.forward(&mut g, &store, xv);
        let mut ctx = InferCtx::new();
        let xs = ctx.slot_from(x.data());
        let ln_got = ln.pack(&store).forward(&mut ctx, xs);
        let mlp_got = mlp.pack(&store, 8).forward(&mut ctx, xs, 8);
        // LayerNorm's packed reductions are 4-way reassociated: close, not
        // bit-exact
        assert_close(ctx.data(ln_got), g.data(ln_want).data(), "layer norm");
        assert_close(ctx.data(mlp_got), g.data(mlp_want).data(), "mlp");
    }

    #[test]
    fn packed_mixer_block_matches_tape() {
        let mut store = ParamStore::new();
        let block = MixerBlock::new(&mut store, "mix", 4, 6, 2, 12, 5);
        let x = init::uniform(&[3, 4, 6], -1.0, 1.0, 2);
        let mut g = Graph::inference();
        let xv = g.leaf(x.clone());
        let want = block.forward(&mut g, &store, xv);
        let mut ctx = InferCtx::new();
        let xs = ctx.slot_from(x.data());
        let got = block.pack(&store, 8).forward(&mut ctx, xs, 3);
        assert_close(g.data(want).data(), ctx.data(got), "mixer block");
    }

    #[test]
    fn generic_kernels_match_ops() {
        let mut ctx = InferCtx::new();
        // concat + gather + transpose + mean_tokens against the ops versions
        let a = init::uniform(&[4, 3], -1.0, 1.0, 1);
        let b = init::uniform(&[4, 2], -1.0, 1.0, 2);
        let sa = ctx.slot_from(a.data());
        let sb = ctx.slot_from(b.data());
        let cat = ctx.concat_cols(&[(sa, 3), (sb, 2)], 4);
        let mut g = Graph::inference();
        let (va, vb) = (g.leaf(a.clone()), g.leaf(b.clone()));
        let vcat = g.concat_cols(&[va, vb]);
        assert_eq!(ctx.data(cat), g.data(vcat).data());

        let gathered = ctx.gather_rows(cat, 5, &[3, 0, 3]);
        let vg = g.gather_rows(vcat, &[3, 0, 3]);
        assert_eq!(ctx.data(gathered), g.data(vg).data());

        let x3 = init::uniform(&[2, 3, 4], -1.0, 1.0, 7);
        let s3 = ctx.slot_from(x3.data());
        let t = ctx.transpose12(s3, 2, 3, 4);
        assert_eq!(ctx.data(t), ops::transpose12(&x3).data());
        let mt = ctx.mean_tokens(s3, 2, 3, 4);
        assert_eq!(ctx.data(mt), ops::mean_tokens(&x3).data());
    }

    #[test]
    fn softmax_matches_tape_semantics() {
        let mut ctx = InferCtx::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = ctx.slot_from(x.data());
        ctx.softmax_rows_inplace(s, 3);
        assert_eq!(ctx.data(s), ops::softmax_lastdim(&x).data());
    }
}
