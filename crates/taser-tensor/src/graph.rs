//! Tape-based reverse-mode autograd.
//!
//! A [`Graph`] is a define-by-run tape: every op appends a node holding the
//! forward result and a backward closure. Training code builds a fresh tape
//! per iteration, calls [`Graph::backward`] on the scalar loss, then flushes
//! parameter gradients into a [`crate::optim::ParamStore`] with
//! [`Graph::flush_grads`].
//!
//! Ops only ever reference earlier nodes, so insertion order is a valid
//! topological order and backward is a single reverse sweep.

use crate::ops;
use crate::optim::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct VarId(pub(crate) usize);

type BackFn = Box<dyn Fn(&Graph, &Tensor, &mut Vec<Option<Tensor>>) + Send>;

struct Node {
    data: Tensor,
    back: Option<BackFn>,
    param: Option<ParamId>,
}

/// A single-use autograd tape.
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    grad_enabled: bool,
}

fn acc(grads: &mut [Option<Tensor>], id: VarId, g: Tensor) {
    match &mut grads[id.0] {
        Some(t) => t.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape with gradients enabled.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            grads: Vec::new(),
            grad_enabled: true,
        }
    }

    /// An inference-only tape: backward closures are never built, which makes
    /// forward passes cheaper. [`Graph::backward`] on such a tape only
    /// produces the root gradient.
    pub fn inference() -> Self {
        Graph {
            nodes: Vec::new(),
            grads: Vec::new(),
            grad_enabled: false,
        }
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn data(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].data
    }

    /// The gradient of a node, if backward has been run and the node
    /// participated in the loss.
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(|g| g.as_ref())
    }

    /// Shape of a node's value.
    pub fn shape(&self, id: VarId) -> &[usize] {
        self.nodes[id.0].data.shape()
    }

    fn push(&mut self, data: Tensor, back: Option<BackFn>) -> VarId {
        let back = if self.grad_enabled { back } else { None };
        self.nodes.push(Node {
            data,
            back,
            param: None,
        });
        VarId(self.nodes.len() - 1)
    }

    /// Records a constant leaf (no gradient flows into it).
    pub fn leaf(&mut self, t: Tensor) -> VarId {
        self.push(t, None)
    }

    /// Binds a parameter from `store` as a leaf; after backward,
    /// [`Graph::flush_grads`] routes its gradient back into the store.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        let v = self.push(store.value(id).clone(), None);
        self.nodes[v.0].param = Some(id);
        v
    }

    /// A new leaf carrying a copy of `x`'s value — gradient flow stops here.
    pub fn detach(&mut self, x: VarId) -> VarId {
        let t = self.data(x).clone();
        self.leaf(t)
    }

    // ---- element-wise binary ----

    /// Element-wise sum of same-shape tensors.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let out = self.data(a).zip_map(self.data(b), |x, y| x + y);
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                acc(grads, a, gout.clone());
                acc(grads, b, gout.clone());
            })),
        )
    }

    /// Element-wise difference of same-shape tensors.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let out = self.data(a).zip_map(self.data(b), |x, y| x - y);
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                acc(grads, a, gout.clone());
                acc(grads, b, gout.map(|v| -v));
            })),
        )
    }

    /// Element-wise (Hadamard) product of same-shape tensors.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let out = self.data(a).zip_map(self.data(b), |x, y| x * y);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                acc(grads, a, gout.zip_map(g.data(b), |go, y| go * y));
                acc(grads, b, gout.zip_map(g.data(a), |go, x| go * x));
            })),
        )
    }

    /// Element-wise quotient of same-shape tensors.
    pub fn div(&mut self, a: VarId, b: VarId) -> VarId {
        let out = self.data(a).zip_map(self.data(b), |x, y| x / y);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let bd = g.data(b);
                acc(grads, a, gout.zip_map(bd, |go, y| go / y));
                let ad = g.data(a);
                let mut gb = gout.clone();
                for ((gv, &x), &y) in gb
                    .data_mut()
                    .iter_mut()
                    .zip(ad.data().iter())
                    .zip(bd.data().iter())
                {
                    *gv = -*gv * x / (y * y);
                }
                acc(grads, b, gb);
            })),
        )
    }

    // ---- scalar ----

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: VarId, c: f32) -> VarId {
        let out = self.data(a).map(|x| x + c);
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| acc(grads, a, gout.clone()))),
        )
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&mut self, a: VarId, c: f32) -> VarId {
        let out = self.data(a).map(|x| x * c);
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                acc(grads, a, gout.map(|v| v * c))
            })),
        )
    }

    // ---- broadcast helpers ----

    /// Adds a `[d]` bias vector to every row of a `[.., d]` tensor.
    pub fn add_bias(&mut self, x: VarId, bias: VarId) -> VarId {
        let d = self.data(x).last_dim();
        assert_eq!(self.data(bias).numel(), d, "bias length mismatch");
        let mut out = self.data(x).clone();
        let bd = self.data(bias).data().to_vec();
        for row in out.data_mut().chunks_mut(d) {
            for (v, b) in row.iter_mut().zip(bd.iter()) {
                *v += b;
            }
        }
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                acc(grads, x, gout.clone());
                let d = g.data(bias).numel();
                let mut gb = Tensor::zeros(g.data(bias).shape());
                for row in gout.data().chunks(d) {
                    for (b, v) in gb.data_mut().iter_mut().zip(row.iter()) {
                        *b += v;
                    }
                }
                acc(grads, bias, gb);
            })),
        )
    }

    /// Scales each row `i` of `x` (`[n, d]`) by scalar `s[i]` (`[n]`).
    pub fn scale_rows(&mut self, x: VarId, s: VarId) -> VarId {
        let d = self.data(x).last_dim();
        let n = self.data(x).rows();
        assert_eq!(self.data(s).numel(), n, "scale_rows length mismatch");
        let mut out = self.data(x).clone();
        let sd = self.data(s).data().to_vec();
        for (i, row) in out.data_mut().chunks_mut(d).enumerate() {
            for v in row.iter_mut() {
                *v *= sd[i];
            }
        }
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let d = g.data(x).last_dim();
                let sd = g.data(s).data();
                let mut gx = gout.clone();
                for (i, row) in gx.data_mut().chunks_mut(d).enumerate() {
                    for v in row.iter_mut() {
                        *v *= sd[i];
                    }
                }
                acc(grads, x, gx);
                let xd = g.data(x).data();
                let mut gs = Tensor::zeros(g.data(s).shape());
                for (i, gv) in gs.data_mut().iter_mut().enumerate() {
                    let row = i * d;
                    *gv = gout.data()[row..row + d]
                        .iter()
                        .zip(xd[row..row + d].iter())
                        .map(|(a, b)| a * b)
                        .sum();
                }
                acc(grads, s, gs);
            })),
        )
    }

    // ---- unary ----

    fn unary(
        &mut self,
        a: VarId,
        f: impl Fn(f32) -> f32 + Sync,
        dfdx: impl Fn(f32) -> f32 + Send + Sync + 'static,
    ) -> VarId {
        let out = self.data(a).map(f);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                acc(grads, a, gout.zip_map(g.data(a), |go, x| go * dfdx(x)));
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        self.unary(a, |x| x.max(0.0), |x| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: VarId, slope: f32) -> VarId {
        self.unary(
            a,
            move |x| if x > 0.0 { x } else { slope * x },
            move |x| if x > 0.0 { 1.0 } else { slope },
        )
    }

    /// GeLU (tanh approximation).
    pub fn gelu(&mut self, a: VarId) -> VarId {
        self.unary(a, ops::gelu, ops::gelu_grad)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let out = self.data(a).map(ops::sigmoid);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                // use the saved output: σ' = σ(1-σ)
                let s = g.data(a).map(ops::sigmoid);
                acc(grads, a, gout.zip_map(&s, |go, sv| go * sv * (1.0 - sv)));
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.unary(
            a,
            |x| x.tanh(),
            |x| {
                let t = x.tanh();
                1.0 - t * t
            },
        )
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        self.unary(a, |x| x.exp(), |x| x.exp())
    }

    /// Element-wise natural log (inputs must be positive).
    pub fn ln(&mut self, a: VarId) -> VarId {
        self.unary(a, |x| x.ln(), |x| 1.0 / x)
    }

    /// Element-wise cosine — used by the learnable time encoding (Eq. 3).
    pub fn cos(&mut self, a: VarId) -> VarId {
        self.unary(a, |x| x.cos(), |x| -x.sin())
    }

    /// Element-wise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        self.unary(a, |x| x * x, |x| 2.0 * x)
    }

    // ---- linear algebra ----

    /// 2-D matrix product `[n,k] · [k,m] -> [n,m]`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let out = ops::matmul(self.data(a), self.data(b));
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let gout2 = if gout.shape().len() == 2 {
                    gout.clone()
                } else {
                    gout.reshape(&[gout.rows(), gout.last_dim()])
                };
                acc(grads, a, {
                    let ga = ops::matmul_bt(&gout2, g.data(b));
                    ga.reshape(g.data(a).shape())
                });
                acc(grads, b, ops::matmul_at(g.data(a), &gout2));
            })),
        )
    }

    /// Batched matmul `[b,n,k] · [b,k,m]`; with `tb` the rhs is `[b,m,k]`
    /// and used transposed.
    pub fn bmm(&mut self, a: VarId, b: VarId, tb: bool) -> VarId {
        let out = ops::bmm(self.data(a), self.data(b), tb);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                if tb {
                    acc(grads, a, ops::bmm(gout, g.data(b), false));
                    acc(grads, b, ops::bmm_at(gout, g.data(a)));
                } else {
                    acc(grads, a, ops::bmm(gout, g.data(b), true));
                    acc(grads, b, ops::bmm_at(g.data(a), gout));
                }
            })),
        )
    }

    // ---- shape ----

    /// Reinterprets the value under a new shape (free — row-major layout).
    pub fn reshape(&mut self, a: VarId, shape: &[usize]) -> VarId {
        let out = self.data(a).reshape(shape);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                acc(grads, a, gout.reshape(g.data(a).shape()));
            })),
        )
    }

    /// Permutes `[b,n,d]` to `[b,d,n]`.
    pub fn transpose12(&mut self, a: VarId) -> VarId {
        let out = ops::transpose12(self.data(a));
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                acc(grads, a, ops::transpose12(gout));
            })),
        )
    }

    /// Groups heads: `[r*n, h*dh] -> [r*h, n, dh]`.
    pub fn split_heads(&mut self, a: VarId, n: usize, h: usize) -> VarId {
        let out = ops::split_heads(self.data(a), n, h);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let merged = ops::merge_heads(gout, h);
                acc(grads, a, merged.reshape(g.data(a).shape()));
            })),
        )
    }

    /// Ungroups heads: `[r*h, n, dh] -> [r*n, h*dh]`.
    pub fn merge_heads(&mut self, a: VarId, h: usize) -> VarId {
        let n = self.data(a).shape()[1];
        let out = ops::merge_heads(self.data(a), h);
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                acc(grads, a, ops::split_heads(gout, n, h));
            })),
        )
    }

    /// Concatenates 2-D-viewed tensors along the trailing dimension.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty());
        let rows = self.data(parts[0]).rows();
        let widths: Vec<usize> = parts.iter().map(|&p| self.data(p).last_dim()).collect();
        for &p in parts {
            assert_eq!(self.data(p).rows(), rows, "concat_cols row mismatch");
        }
        let total: usize = widths.iter().sum();
        let mut out = Tensor::zeros(&[rows, total]);
        {
            let od = out.data_mut();
            let mut off = 0;
            for (pi, &p) in parts.iter().enumerate() {
                let w = widths[pi];
                let pd = self.nodes[p.0].data.data();
                for r in 0..rows {
                    od[r * total + off..r * total + off + w]
                        .copy_from_slice(&pd[r * w..(r + 1) * w]);
                }
                off += w;
            }
        }
        let parts_owned: Vec<VarId> = parts.to_vec();
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let total = gout.last_dim();
                let rows = gout.rows();
                let mut off = 0;
                for &p in &parts_owned {
                    let w = g.data(p).last_dim();
                    let mut gp = Tensor::zeros(&[rows, w]);
                    for r in 0..rows {
                        gp.data_mut()[r * w..(r + 1) * w]
                            .copy_from_slice(&gout.data()[r * total + off..r * total + off + w]);
                    }
                    acc(grads, p, gp.reshape(g.data(p).shape()));
                    off += w;
                }
            })),
        )
    }

    /// Extracts columns `[start, end)` of a 2-D-viewed tensor.
    pub fn slice_cols(&mut self, a: VarId, start: usize, end: usize) -> VarId {
        let d = self.data(a).last_dim();
        let rows = self.data(a).rows();
        assert!(start <= end && end <= d);
        let w = end - start;
        let mut out = Tensor::zeros(&[rows, w]);
        for r in 0..rows {
            out.data_mut()[r * w..(r + 1) * w]
                .copy_from_slice(&self.nodes[a.0].data.data()[r * d + start..r * d + end]);
        }
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let d = g.data(a).last_dim();
                let rows = g.data(a).rows();
                let mut ga = Tensor::zeros(&[rows, d]);
                for r in 0..rows {
                    ga.data_mut()[r * d + start..r * d + end]
                        .copy_from_slice(&gout.data()[r * w..(r + 1) * w]);
                }
                acc(grads, a, ga.reshape(g.data(a).shape()));
            })),
        )
    }

    /// Gathers rows by index; backward scatter-adds (duplicate indices sum).
    pub fn gather_rows(&mut self, a: VarId, idx: &[usize]) -> VarId {
        let out = ops::gather_rows(self.data(a), idx);
        let idx_owned = idx.to_vec();
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let d = g.data(a).last_dim();
                let mut ga = Tensor::zeros(&[g.data(a).rows(), d]);
                for (i, &j) in idx_owned.iter().enumerate() {
                    let dst = &mut ga.data_mut()[j * d..(j + 1) * d];
                    for (x, &v) in dst.iter_mut().zip(gout.data()[i * d..(i + 1) * d].iter()) {
                        *x += v;
                    }
                }
                acc(grads, a, ga.reshape(g.data(a).shape()));
            })),
        )
    }

    // ---- normalization / softmax ----

    /// Softmax over the trailing dimension.
    pub fn softmax(&mut self, a: VarId) -> VarId {
        let out = ops::softmax_lastdim(self.data(a));
        let saved = out.clone();
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                let d = saved.last_dim();
                let mut gx = gout.clone();
                for (grow, srow) in gx.data_mut().chunks_mut(d).zip(saved.data().chunks(d)) {
                    let inner: f32 = grow.iter().zip(srow.iter()).map(|(g, s)| g * s).sum();
                    for (gv, &sv) in grow.iter_mut().zip(srow.iter()) {
                        *gv = sv * (*gv - inner);
                    }
                }
                acc(grads, a, gx);
            })),
        )
    }

    /// Log-softmax over the trailing dimension.
    pub fn log_softmax(&mut self, a: VarId) -> VarId {
        let out = ops::log_softmax_lastdim(self.data(a));
        let saved = out.clone();
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                let d = saved.last_dim();
                let mut gx = gout.clone();
                for (grow, lrow) in gx.data_mut().chunks_mut(d).zip(saved.data().chunks(d)) {
                    let gsum: f32 = grow.iter().sum();
                    for (gv, &lv) in grow.iter_mut().zip(lrow.iter()) {
                        *gv -= lv.exp() * gsum;
                    }
                }
                acc(grads, a, gx);
            })),
        )
    }

    /// LayerNorm over the trailing dimension with affine parameters.
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f32) -> VarId {
        let (out, xhat, rstd) =
            ops::layer_norm(self.data(x), self.data(gamma), self.data(beta), eps);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let d = g.data(x).last_dim();
                let gam = g.data(gamma).data();
                // dbeta, dgamma
                let mut gbeta = Tensor::zeros(g.data(beta).shape());
                let mut ggamma = Tensor::zeros(g.data(gamma).shape());
                for (grow, hrow) in gout.data().chunks(d).zip(xhat.data().chunks(d)) {
                    for j in 0..d {
                        gbeta.data_mut()[j] += grow[j];
                        ggamma.data_mut()[j] += grow[j] * hrow[j];
                    }
                }
                acc(grads, beta, gbeta);
                acc(grads, gamma, ggamma);
                // dx = rstd * (dy*g - mean(dy*g) - xhat * mean(dy*g*xhat))
                let mut gx = Tensor::zeros(g.data(x).shape());
                for ((i, grow), hrow) in
                    gout.data().chunks(d).enumerate().zip(xhat.data().chunks(d))
                {
                    let r = rstd[i];
                    let mut m1 = 0.0f32;
                    let mut m2 = 0.0f32;
                    for j in 0..d {
                        let dg = grow[j] * gam[j];
                        m1 += dg;
                        m2 += dg * hrow[j];
                    }
                    m1 /= d as f32;
                    m2 /= d as f32;
                    let dst = &mut gx.data_mut()[i * d..(i + 1) * d];
                    for j in 0..d {
                        let dg = grow[j] * gam[j];
                        dst[j] = r * (dg - m1 - hrow[j] * m2);
                    }
                }
                acc(grads, x, gx);
            })),
        )
    }

    // ---- reductions ----

    /// Sum of all elements, shape `[1]`.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let out = Tensor::scalar(self.data(a).sum());
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let v = gout.item();
                acc(grads, a, Tensor::full(g.data(a).shape(), v));
            })),
        )
    }

    /// Mean of all elements, shape `[1]`.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let n = self.data(a).numel() as f32;
        let out = Tensor::scalar(self.data(a).sum() / n);
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let v = gout.item() / n;
                acc(grads, a, Tensor::full(g.data(a).shape(), v));
            })),
        )
    }

    /// Mean over the token (middle) dimension: `[b,n,d] -> [b,d]`.
    pub fn mean_tokens(&mut self, a: VarId) -> VarId {
        let out = ops::mean_tokens(self.data(a));
        self.push(
            out,
            Some(Box::new(move |g, gout, grads| {
                let shp = g.data(a).shape();
                let (b, n, d) = (shp[0], shp[1], shp[2]);
                let mut ga = Tensor::zeros(shp);
                let inv = 1.0 / n as f32;
                for bi in 0..b {
                    let grow = &gout.data()[bi * d..(bi + 1) * d];
                    for ni in 0..n {
                        let dst = &mut ga.data_mut()[(bi * n + ni) * d..(bi * n + ni + 1) * d];
                        for (x, &v) in dst.iter_mut().zip(grow.iter()) {
                            *x += v * inv;
                        }
                    }
                }
                acc(grads, a, ga);
            })),
        )
    }

    // ---- regularization / losses ----

    /// Inverted dropout. At `training=false` this is the identity.
    pub fn dropout(&mut self, a: VarId, p: f32, training: bool, seed: u64) -> VarId {
        if !training || p <= 0.0 {
            let t = self.data(a).clone();
            return self.push(
                t,
                Some(Box::new(move |_g, gout, grads| acc(grads, a, gout.clone()))),
            );
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let n = self.data(a).numel();
        let mut mask = vec![0.0f32; n];
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for m in mask.iter_mut() {
            // SplitMix64 — deterministic, platform-independent
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let u = (z >> 40) as f32 / (1u64 << 24) as f32;
            *m = if u < keep { scale } else { 0.0 };
        }
        let mask = Tensor::from_vec(mask, self.data(a).shape());
        let saved = mask.clone();
        let out = self.data(a).zip_map(&mask, |x, m| x * m);
        self.push(
            out,
            Some(Box::new(move |_g, gout, grads| {
                acc(grads, a, gout.zip_map(&saved, |g, m| g * m));
            })),
        )
    }

    /// Mean binary cross-entropy with logits against constant targets.
    pub fn bce_with_logits(&mut self, logits: VarId, targets: &Tensor) -> VarId {
        let x = self.data(logits);
        assert_eq!(x.numel(), targets.numel(), "bce target length mismatch");
        let n = x.numel() as f32;
        let loss = x
            .data()
            .iter()
            .zip(targets.data().iter())
            .map(|(&xv, &y)| xv.max(0.0) - xv * y + (-(xv.abs())).exp().ln_1p())
            .sum::<f32>()
            / n;
        let tgt = targets.clone();
        self.push(
            Tensor::scalar(loss),
            Some(Box::new(move |g, gout, grads| {
                let s = gout.item() / n;
                let gx = g
                    .data(logits)
                    .zip_map(&tgt, |xv, y| (ops::sigmoid(xv) - y) * s);
                acc(grads, logits, gx);
            })),
        )
    }

    // ---- backward ----

    /// Reverse sweep from a scalar (or any) root. The root's gradient is
    /// seeded with ones. Gradients for every reachable node are retained and
    /// can be queried with [`Graph::grad`].
    pub fn backward(&mut self, root: VarId) {
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = Vec::with_capacity(n);
        grads.resize_with(n, || None);
        grads[root.0] = Some(Tensor::ones(self.nodes[root.0].data.shape()));
        let mut backs: Vec<Option<BackFn>> =
            self.nodes.iter_mut().map(|nd| nd.back.take()).collect();
        for i in (0..=root.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            if let Some(f) = backs[i].take() {
                f(self, &g, &mut grads);
            }
            grads[i] = Some(g);
        }
        self.grads = grads;
    }

    /// Adds the gradients of every bound parameter into `store.grads`.
    pub fn flush_grads(&self, store: &mut ParamStore) {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(pid) = node.param {
                if let Some(g) = self.grads.get(i).and_then(|g| g.as_ref()) {
                    store.accumulate_grad(pid, g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::gradcheck;

    #[test]
    fn add_backward() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let c = g.add(a, b);
        let s = g.sum_all(c);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_div_backward() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let b = g.leaf(Tensor::from_vec(vec![4.0, 5.0], &[2]));
        let c = g.mul(a, b);
        let d = g.div(c, b); // = a
        let s = g.sum_all(d);
        g.backward(s);
        let ga = g.grad(a).unwrap();
        assert!(ga.allclose(&Tensor::ones(&[2]), 1e-5));
    }

    #[test]
    fn matmul_gradcheck() {
        gradcheck(
            &[&[2, 3], &[3, 2]],
            |g, vars| {
                let c = g.matmul(vars[0], vars[1]);
                g.sum_all(c)
            },
            1e-2,
            31,
        );
    }

    #[test]
    fn bmm_gradcheck() {
        gradcheck(
            &[&[2, 2, 3], &[2, 3, 2]],
            |g, vars| {
                let c = g.bmm(vars[0], vars[1], false);
                let sq = g.square(c);
                g.sum_all(sq)
            },
            1e-2,
            7,
        );
        gradcheck(
            &[&[2, 2, 3], &[2, 4, 3]],
            |g, vars| {
                let c = g.bmm(vars[0], vars[1], true);
                g.sum_all(c)
            },
            1e-2,
            11,
        );
    }

    #[test]
    fn softmax_gradcheck() {
        gradcheck(
            &[&[3, 4]],
            |g, vars| {
                let s = g.softmax(vars[0]);
                let sq = g.square(s);
                g.sum_all(sq)
            },
            1e-2,
            3,
        );
    }

    #[test]
    fn log_softmax_gradcheck() {
        gradcheck(
            &[&[2, 5]],
            |g, vars| {
                let s = g.log_softmax(vars[0]);
                let sq = g.square(s);
                g.sum_all(sq)
            },
            5e-2,
            5,
        );
    }

    #[test]
    fn layer_norm_gradcheck() {
        gradcheck(
            &[&[3, 6], &[6], &[6]],
            |g, vars| {
                let y = g.layer_norm(vars[0], vars[1], vars[2], 1e-5);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            5e-2,
            13,
        );
    }

    #[test]
    fn unary_gradchecks() {
        for (name, f) in [
            (
                "gelu",
                (|g: &mut Graph, v: VarId| g.gelu(v)) as fn(&mut Graph, VarId) -> VarId,
            ),
            ("sigmoid", |g, v| g.sigmoid(v)),
            ("tanh", |g, v| g.tanh(v)),
            ("cos", |g, v| g.cos(v)),
            ("relu", |g, v| g.relu(v)),
            ("square", |g, v| g.square(v)),
        ] {
            gradcheck(
                &[&[2, 3]],
                |g, vars| {
                    let y = f(g, vars[0]);
                    let sq = g.square(y);
                    g.sum_all(sq)
                },
                5e-2,
                name.len() as u64 + 17,
            );
        }
    }

    #[test]
    fn concat_slice_gradcheck() {
        gradcheck(
            &[&[2, 2], &[2, 3]],
            |g, vars| {
                let c = g.concat_cols(&[vars[0], vars[1]]);
                let s = g.slice_cols(c, 1, 4);
                let sq = g.square(s);
                g.sum_all(sq)
            },
            1e-2,
            41,
        );
    }

    #[test]
    fn gather_rows_gradcheck() {
        gradcheck(
            &[&[4, 3]],
            |g, vars| {
                let y = g.gather_rows(vars[0], &[0, 2, 2, 3]);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            1e-2,
            43,
        );
    }

    #[test]
    fn scale_rows_gradcheck() {
        gradcheck(
            &[&[3, 4], &[3]],
            |g, vars| {
                let y = g.scale_rows(vars[0], vars[1]);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            1e-2,
            47,
        );
    }

    #[test]
    fn add_bias_gradcheck() {
        gradcheck(
            &[&[3, 4], &[4]],
            |g, vars| {
                let y = g.add_bias(vars[0], vars[1]);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            1e-2,
            53,
        );
    }

    #[test]
    fn heads_and_transpose_gradcheck() {
        gradcheck(
            &[&[6, 4]], // r=3, n=2, h=2, dh=2
            |g, vars| {
                let s = g.split_heads(vars[0], 2, 2);
                let t = g.transpose12(s);
                let t2 = g.transpose12(t);
                let m = g.merge_heads(t2, 2);
                let sq = g.square(m);
                g.sum_all(sq)
            },
            1e-2,
            59,
        );
    }

    #[test]
    fn mean_tokens_gradcheck() {
        gradcheck(
            &[&[2, 3, 4]],
            |g, vars| {
                let y = g.mean_tokens(vars[0]);
                let sq = g.square(y);
                g.sum_all(sq)
            },
            1e-2,
            61,
        );
    }

    #[test]
    fn bce_matches_manual() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.0, 2.0, -1.0], &[3]));
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0], &[3]);
        let l = g.bce_with_logits(x, &t);
        // manual: -[ln σ(0)] - ln σ(2) - ln(1-σ(-1)) over 3
        let want = (-(ops::sigmoid(0.0f32).ln())
            - ops::sigmoid(2.0).ln()
            - (1.0 - ops::sigmoid(-1.0)).ln())
            / 3.0;
        assert!((g.data(l).item() - want).abs() < 1e-5);
        g.backward(l);
        let gx = g.grad(x).unwrap();
        for (i, (&xv, &y)) in [0.0f32, 2.0, -1.0].iter().zip(t.data().iter()).enumerate() {
            let want = (ops::sigmoid(xv) - y) / 3.0;
            assert!((gx.data()[i] - want).abs() < 1e-6);
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[10]));
        let y = g.dropout(x, 0.5, false, 1);
        assert!(g.data(y).allclose(&Tensor::ones(&[10]), 0.0));
    }

    #[test]
    fn dropout_train_scales_mask() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[1000]));
        let y = g.dropout(x, 0.5, true, 7);
        let kept: usize = g.data(y).data().iter().filter(|&&v| v != 0.0).count();
        assert!(kept > 350 && kept < 650, "kept {kept} of 1000 at p=0.5");
        for &v in g.data(y).data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn inference_graph_skips_closures() {
        let mut g = Graph::inference();
        let a = g.leaf(Tensor::ones(&[2, 2]));
        let b = g.leaf(Tensor::ones(&[2, 2]));
        let c = g.matmul(a, b);
        let s = g.sum_all(c);
        g.backward(s); // no-op for parents, must not panic
        assert!(g.grad(a).is_none());
        assert_eq!(g.data(s).item(), 8.0);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![3.0], &[1]));
        let b = g.add(a, a); // 2a
        let c = g.mul(b, a); // 2a^2 -> d/da = 4a = 12
        g.backward(c);
        assert!((g.grad(a).unwrap().item() - 12.0).abs() < 1e-5);
    }

    #[test]
    fn detach_stops_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![2.0], &[1]));
        let d = g.detach(a);
        let y = g.mul(d, a);
        g.backward(y);
        // d/da via the detached path must not contribute; only the direct a
        assert!((g.grad(a).unwrap().item() - 2.0).abs() < 1e-6);
    }
}
