//! The immutable published snapshot: chained time-ordered chunks per node,
//! sharded node tables, structural sharing across generations.

use std::sync::Arc;
use taser_graph::index::TemporalIndex;
use taser_graph::tcsr::TemporalNeighbor;

/// Entries per sealed chunk. Every chunk of a node's chain except the last
/// holds exactly this many entries, so locating entry `i` is `i / CHUNK_CAP`
/// — no per-chunk offset table. 64 entries ≈ 1 KiB of payload per chunk, a
/// few cache lines per binary-search probe.
pub const CHUNK_CAP: usize = 64;

/// One immutable block of a node's adjacency chain, time-sorted. Sealed
/// chunks are shared (`Arc`) across every snapshot generation that contains
/// them; they are never mutated after construction.
#[derive(Debug)]
pub struct Chunk {
    pub(crate) neigh: Vec<u32>,
    pub(crate) ts: Vec<f64>,
    pub(crate) eid: Vec<u32>,
    /// Fence: the largest (= last) timestamp in the chunk. Pivot searches
    /// bisect the fences first and only then probe inside one chunk.
    pub(crate) max_t: f64,
}

impl Chunk {
    pub(crate) fn new(neigh: Vec<u32>, ts: Vec<f64>, eid: Vec<u32>) -> Self {
        debug_assert!(!ts.is_empty());
        debug_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        let max_t = *ts.last().expect("chunk cannot be empty");
        Chunk {
            neigh,
            ts,
            eid,
            max_t,
        }
    }

    fn bytes(&self) -> usize {
        self.neigh.len() * 4 + self.ts.len() * 8 + self.eid.len() * 4 + 8
    }
}

/// One node's published chain: full `CHUNK_CAP`-sized chunks plus at most
/// one partial tail chunk.
#[derive(Debug, Default)]
pub struct NodeSlab {
    pub(crate) chunks: Vec<Arc<Chunk>>,
    pub(crate) len: usize,
}

/// The published node table of one shard (local index = `v / S`).
#[derive(Debug, Default)]
pub struct ShardTable {
    pub(crate) nodes: Vec<Arc<NodeSlab>>,
    pub(crate) entries: usize,
}

/// An immutable published generation of the incremental T-CSR.
///
/// Structure: `shards[v % S].nodes[v / S]` is node `v`'s chunk chain.
/// Chunks, node slabs, and whole shard tables are shared with other
/// generations wherever nothing changed, so holding many generations costs
/// only the deltas between them.
#[derive(Debug)]
pub struct IncTcsr {
    pub(crate) shards: Vec<Arc<ShardTable>>,
    pub(crate) num_shards: usize,
    pub(crate) num_nodes: usize,
    pub(crate) num_entries: usize,
}

impl IncTcsr {
    /// An index over `num_nodes` nodes with no events (the cold-start
    /// snapshot), sharded `num_shards` ways.
    pub fn empty(num_nodes: usize, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let empty_slab = Arc::new(NodeSlab::default());
        let shards = (0..num_shards)
            .map(|s| {
                // shard s owns nodes {v : v % S == s, v < N}
                let locals = (num_nodes + num_shards - 1 - s) / num_shards;
                Arc::new(ShardTable {
                    nodes: vec![empty_slab.clone(); locals],
                    entries: 0,
                })
            })
            .collect();
        IncTcsr {
            shards,
            num_shards,
            num_nodes,
            num_entries: 0,
        }
    }

    /// Number of shards the node space is partitioned into.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    #[inline]
    fn slab(&self, v: u32) -> Option<&NodeSlab> {
        let v = v as usize;
        self.shards[v % self.num_shards]
            .nodes
            .get(v / self.num_shards)
            .map(|a| a.as_ref())
    }
}

impl TemporalIndex for IncTcsr {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_entries(&self) -> usize {
        self.num_entries
    }

    fn neighbor_count(&self, v: u32) -> usize {
        self.slab(v).map_or(0, |s| s.len)
    }

    #[inline]
    fn entry(&self, v: u32, i: usize) -> TemporalNeighbor {
        let slab = self.slab(v).expect("entry index out of range");
        let c = &slab.chunks[i / CHUNK_CAP];
        let w = i % CHUNK_CAP;
        TemporalNeighbor {
            node: c.neigh[w],
            t: c.ts[w],
            eid: c.eid[w],
        }
    }

    #[inline]
    fn entry_ts(&self, v: u32, i: usize) -> f64 {
        let slab = self.slab(v).expect("entry index out of range");
        slab.chunks[i / CHUNK_CAP].ts[i % CHUNK_CAP]
    }

    fn pivot(&self, v: u32, t: f64) -> usize {
        // Fence bisection first: a chunk whose max_t < t lies entirely
        // before the pivot. Then one in-chunk partition_point. Both
        // searches touch contiguous memory, unlike the generic entry_ts
        // bisection which would chase a chunk pointer per probe.
        let Some(slab) = self.slab(v) else { return 0 };
        let ci = slab.chunks.partition_point(|c| c.max_t < t);
        if ci == slab.chunks.len() {
            return slab.len;
        }
        ci * CHUNK_CAP + slab.chunks[ci].ts.partition_point(|&x| x < t)
    }

    fn bytes(&self) -> usize {
        let mut total = self.shards.len() * 8;
        for sh in &self.shards {
            total += sh.nodes.len() * 8;
            for n in &sh.nodes {
                total += n.chunks.iter().map(|c| c.bytes() + 8).sum::<usize>();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_index_answers_zero_everywhere() {
        let idx = IncTcsr::empty(10, 4);
        assert_eq!(idx.num_nodes(), 10);
        assert_eq!(idx.num_entries(), 0);
        for v in 0..10u32 {
            assert_eq!(idx.neighbor_count(v), 0);
            assert_eq!(idx.pivot(v, 1e9), 0);
            assert_eq!(idx.temporal_degree(v, 1e9), 0);
        }
        // nodes beyond the table also answer zero (graph growth tolerance)
        assert_eq!(idx.neighbor_count(999), 0);
        assert_eq!(idx.pivot(999, 1.0), 0);
    }

    #[test]
    fn empty_index_single_shard() {
        let idx = IncTcsr::empty(3, 1);
        assert_eq!(idx.neighbor_count(2), 0);
    }
}
