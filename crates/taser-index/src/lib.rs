//! # taser-index
//!
//! An incremental, sharded temporal adjacency index for live dynamic graphs.
//!
//! The flat [`TCsr`](taser_graph::tcsr::TCsr) answers temporal neighborhood
//! queries fastest, but refreshing it means rebuilding from the full event
//! log — O(E) per snapshot publish, the cost the ROADMAP flags as the
//! limiter for large live graphs. Systems that stay online at stream rate
//! (TGN's memory modules, NAT's per-node dictionaries) maintain per-node
//! recent-neighbor state *incrementally*; this crate gives the taser-rs
//! serving path the same property:
//!
//! * [`IncTcsr`] — an immutable published snapshot storing each node's
//!   neighbors as chained, time-ordered **chunks** (log-structured per-node
//!   blocks) with per-chunk max-timestamp fences. It implements
//!   [`TemporalIndex`], so every finder, the trainer, and the serving
//!   pipeline run against it unchanged.
//! * [`IncIndexWriter`] — the mutable side: nodes are partitioned across
//!   `S` independently-locked shards (`shard(v) = v mod S`), appends cost
//!   amortized O(1) per edge direction, and [`IncIndexWriter::publish`]
//!   produces a new snapshot touching **only what changed** since the last
//!   generation: clean nodes' chunk lists are structurally shared via
//!   `Arc`, clean shards reuse their whole published table, and dirty
//!   shards rebuild their node-pointer spine in parallel over the
//!   workspace rayon shim.
//!
//! Publish cost is O(Δ) data copy (only open chunk tails are re-sealed)
//! plus O(nodes/S) pointer clones per *dirty* shard and O(S) for the
//! snapshot spine — no event re-sort, no slab rebuild. Readers holding an
//! old `Arc<IncTcsr>` keep a consistent view forever; generations never
//! mutate.
//!
//! ```
//! use taser_graph::events::EventLog;
//! use taser_graph::index::TemporalIndex;
//! use taser_index::IncIndexWriter;
//!
//! let log = EventLog::from_unsorted(vec![(0, 1, 1.0), (1, 2, 2.0)]);
//! let mut w = IncIndexWriter::from_log(&log, 3, 4);
//! let before = w.publish();
//! w.append(2, 0, 3.0);
//! let after = w.publish();
//! assert_eq!(before.temporal_degree(0, 10.0), 1); // old snapshot unchanged
//! assert_eq!(after.temporal_degree(0, 10.0), 2);
//! ```

pub mod inc;
pub mod writer;

pub use inc::{IncTcsr, CHUNK_CAP};
pub use writer::{IncIndexWriter, DEFAULT_SHARDS};

// Re-exported so downstream crates can name the trait without also
// depending on taser-graph directly.
pub use taser_graph::index::TemporalIndex;
