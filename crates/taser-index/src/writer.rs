//! The mutable side of the incremental index: sharded ingest and O(Δ)
//! snapshot publish.

use crate::inc::{Chunk, IncTcsr, NodeSlab, ShardTable, CHUNK_CAP};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};
use taser_graph::events::{Event, EventLog};

/// Default shard count. Sharding only affects write-path parallelism and
/// publish granularity — query results are identical for any value — so the
/// default just needs to comfortably exceed the thread counts this
/// workspace targets.
pub const DEFAULT_SHARDS: usize = 32;

fn empty_slab() -> Arc<NodeSlab> {
    static EMPTY: OnceLock<Arc<NodeSlab>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(NodeSlab::default())).clone()
}

/// Per-node writer state: sealed full chunks plus the open tail.
struct WriterNode {
    /// Sealed chunks, each exactly `CHUNK_CAP` entries, shared with every
    /// snapshot that has published them.
    full: Vec<Arc<Chunk>>,
    /// Open tail (`< CHUNK_CAP` entries), owned by the writer only.
    tail_neigh: Vec<u32>,
    tail_ts: Vec<f64>,
    tail_eid: Vec<u32>,
    /// Touched since the last publish.
    dirty: bool,
    /// The chain the last publish exposed for this node.
    published: Arc<NodeSlab>,
}

impl Default for WriterNode {
    fn default() -> Self {
        WriterNode {
            full: Vec::new(),
            tail_neigh: Vec::new(),
            tail_ts: Vec::new(),
            tail_eid: Vec::new(),
            dirty: false,
            published: empty_slab(),
        }
    }
}

impl WriterNode {
    fn push(&mut self, other: u32, t: f64, eid: u32) {
        self.tail_neigh.push(other);
        self.tail_ts.push(t);
        self.tail_eid.push(eid);
        if self.tail_ts.len() == CHUNK_CAP {
            self.full.push(Arc::new(Chunk::new(
                std::mem::take(&mut self.tail_neigh),
                std::mem::take(&mut self.tail_ts),
                std::mem::take(&mut self.tail_eid),
            )));
        }
    }

    fn len(&self) -> usize {
        self.full.len() * CHUNK_CAP + self.tail_ts.len()
    }

    /// Seals the current state into an immutable chain: sealed chunks are
    /// Arc-shared as-is; only the open tail (≤ `CHUNK_CAP` entries) is
    /// copied. This is the entire per-node data-copy cost of a publish.
    fn publish(&mut self) -> Arc<NodeSlab> {
        let mut chunks = self.full.clone();
        if !self.tail_ts.is_empty() {
            chunks.push(Arc::new(Chunk::new(
                self.tail_neigh.clone(),
                self.tail_ts.clone(),
                self.tail_eid.clone(),
            )));
        }
        let slab = Arc::new(NodeSlab {
            len: self.len(),
            chunks,
        });
        self.published = slab.clone();
        self.dirty = false;
        slab
    }
}

/// One independently-locked shard owning nodes `{v : v % S == s}`.
struct Shard {
    /// Local index `v / S`.
    nodes: Vec<WriterNode>,
    /// Local indices touched since the last publish.
    dirty_nodes: Vec<u32>,
    entries: usize,
    /// The table the last publish exposed; reused verbatim while clean.
    table: Arc<ShardTable>,
    dirty: bool,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            nodes: Vec::new(),
            dirty_nodes: Vec::new(),
            entries: 0,
            table: Arc::new(ShardTable::default()),
            dirty: false,
        }
    }
}

impl Shard {
    fn push(&mut self, local: usize, other: u32, t: f64, eid: u32) {
        if self.nodes.len() <= local {
            self.nodes.resize_with(local + 1, WriterNode::default);
        }
        let node = &mut self.nodes[local];
        if !node.dirty {
            node.dirty = true;
            self.dirty_nodes.push(local as u32);
        }
        node.push(other, t, eid);
        self.entries += 1;
        self.dirty = true;
    }

    /// Returns how many dirty nodes this publish re-sealed (0 for a clean
    /// shard) — the per-shard share of the O(Δ) bound, fed to metrics.
    fn publish(&mut self) -> usize {
        if !self.dirty {
            return 0;
        }
        let sealed = self.dirty_nodes.len();
        for &local in &self.dirty_nodes {
            self.nodes[local as usize].publish();
        }
        self.dirty_nodes.clear();
        // New pointer spine for the shard (O(nodes-in-shard) Arc clones, no
        // data copy); clean shards skip even this.
        self.table = Arc::new(ShardTable {
            nodes: self.nodes.iter().map(|n| n.published.clone()).collect(),
            entries: self.entries,
        });
        self.dirty = false;
        sealed
    }
}

/// Routes a chronological event slice into the shards in parallel. Shard
/// ids are grouped into one contiguous range per worker thread; each group
/// locks its shards up front, scans the shared event array **once**, and
/// keeps only the endpoints it owns — O(threads · E) scanning total (a
/// single pass when sequential), never O(S · E).
fn route_events(shards: &[Mutex<Shard>], events: &[Event]) {
    let s_count = shards.len();
    let groups = rayon::current_num_threads().clamp(1, s_count);
    let mut ranges = Vec::with_capacity(groups);
    let mut start = 0usize;
    for g in 0..groups {
        let take = (s_count - start).div_ceil(groups - g);
        ranges.push((start, start + take));
        start += take;
    }
    ranges.into_par_iter().for_each(|(lo, hi)| {
        let mut guards: Vec<_> = shards[lo..hi]
            .iter()
            .map(|m| m.lock().expect("shard lock poisoned"))
            .collect();
        for e in events {
            let ss = (e.src as usize) % s_count;
            if (lo..hi).contains(&ss) {
                guards[ss - lo].push((e.src as usize) / s_count, e.dst, e.t, e.eid);
            }
            if e.src != e.dst {
                let ds = (e.dst as usize) % s_count;
                if (lo..hi).contains(&ds) {
                    guards[ds - lo].push((e.dst as usize) / s_count, e.src, e.t, e.eid);
                }
            }
        }
    });
}

/// Sharded incremental index writer: single logical writer, internally
/// parallel over `S` independently-locked shards.
///
/// Appends must arrive in chronological order (the same contract as
/// [`taser_graph::stream::StreamingGraph`]); edge ids continue past the
/// seed log's maximum. [`IncIndexWriter::publish`] snapshots the current
/// state in O(Δ) — see the crate docs for the exact cost model.
pub struct IncIndexWriter {
    shards: Vec<Mutex<Shard>>,
    num_shards: usize,
    num_nodes: usize,
    next_eid: u32,
    last_t: f64,
    len: usize,
    generation: u64,
    /// Events appended as of the last publish (drives the unpublished
    /// gauge below).
    published_len: usize,
    /// Cached handle into the global metrics registry so the per-append
    /// cost is one sharded relaxed add, not a registry lookup.
    appends_metric: Arc<taser_obs::Counter>,
    /// `taser_index_unpublished_appends`: events buffered in the writer
    /// but not yet visible to any published snapshot — the serving
    /// watchdog's publish-lag signal in gauge form. Cached like
    /// `appends_metric`; updating it is one atomic store per append.
    unpublished_metric: Arc<taser_obs::Gauge>,
}

impl IncIndexWriter {
    /// An empty writer over `num_nodes` nodes with `num_shards` shards.
    pub fn new(num_nodes: usize, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        IncIndexWriter {
            shards: (0..num_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            num_shards,
            num_nodes,
            next_eid: 0,
            last_t: f64::NEG_INFINITY,
            len: 0,
            generation: 0,
            published_len: 0,
            appends_metric: taser_obs::global().counter("taser_index_appends_total"),
            unpublished_metric: taser_obs::global().gauge("taser_index_unpublished_appends"),
        }
    }

    /// Seeds a writer from an existing log, building all shards in parallel
    /// (see `route_events`: one event-array pass per worker thread,
    /// disjoint shard state, no synchronization beyond the shard locks).
    pub fn from_log(log: &EventLog, num_nodes: usize, num_shards: usize) -> Self {
        let mut w = Self::new(num_nodes.max(log.num_nodes()), num_shards);
        let events = log.events();
        route_events(&w.shards, events);
        w.len = events.len();
        w.last_t = events.last().map(|e| e.t).unwrap_or(f64::NEG_INFINITY);
        w.next_eid = events.iter().map(|e| e.eid + 1).max().unwrap_or(0);
        w.unpublished_metric.set(w.len as i64);
        w
    }

    /// Events appended (including the seed log).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current node count (grows with out-of-range appends).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of publishes so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Appends one interaction, returning the event with its assigned edge
    /// id. Self-loops occupy a single entry, matching `TCsr::build`.
    ///
    /// # Panics
    /// Panics if `t` precedes the last appended timestamp.
    pub fn append(&mut self, src: u32, dst: u32, t: f64) -> Event {
        assert!(
            t >= self.last_t,
            "stream must be chronological: {t} < {}",
            self.last_t
        );
        self.appends_metric.inc();
        let e = Event {
            src,
            dst,
            t,
            eid: self.next_eid,
        };
        self.next_eid += 1;
        self.len += 1;
        self.unpublished_metric
            .set((self.len - self.published_len) as i64);
        self.last_t = t;
        self.num_nodes = self.num_nodes.max(src.max(dst) as usize + 1);
        let s = self.num_shards;
        self.shards[(src as usize) % s]
            .lock()
            .expect("shard lock poisoned")
            .push((src as usize) / s, dst, t, e.eid);
        if src != dst {
            self.shards[(dst as usize) % s]
                .lock()
                .expect("shard lock poisoned")
                .push((dst as usize) / s, src, t, e.eid);
        }
        e
    }

    /// Appends a chronological batch, fanning the per-shard work out over
    /// the thread pool. Returns the stored events in batch order.
    ///
    /// # Panics
    /// Panics if the batch is not internally sorted or regresses behind the
    /// stream's last timestamp.
    pub fn append_batch(&mut self, batch: &[(u32, u32, f64)]) -> Vec<Event> {
        let mut prev = self.last_t;
        for &(_, _, t) in batch {
            assert!(t >= prev, "stream must be chronological: {t} < {prev}");
            prev = t;
        }
        self.appends_metric.add(batch.len() as u64);
        let events: Vec<Event> = batch
            .iter()
            .enumerate()
            .map(|(i, &(src, dst, t))| Event {
                src,
                dst,
                t,
                eid: self.next_eid + i as u32,
            })
            .collect();
        for e in &events {
            self.num_nodes = self.num_nodes.max(e.src.max(e.dst) as usize + 1);
        }
        route_events(&self.shards, &events);
        self.next_eid += events.len() as u32;
        self.len += events.len();
        self.unpublished_metric
            .set((self.len - self.published_len) as i64);
        if let Some(e) = events.last() {
            self.last_t = e.t;
        }
        events
    }

    /// Publishes the current state as an immutable snapshot.
    ///
    /// Dirty shards re-seal their touched nodes' tails and rebuild their
    /// pointer spines in parallel; clean shards contribute their previous
    /// table by `Arc` clone. Total cost: O(Δ) data copy + O(nodes/S) pointer
    /// clones per dirty shard + O(S) assembly — independent of the number
    /// of events already indexed.
    pub fn publish(&mut self) -> Arc<IncTcsr> {
        let started = std::time::Instant::now();
        let dirty_sealed = std::sync::atomic::AtomicU64::new(0);
        self.generation += 1;
        {
            // Per-shard publish cost follows the dirty-node distribution,
            // which is power-law on real graphs: a hub-heavy shard can cost
            // many times the median. The pool's adaptive chunking claims
            // shards dynamically (up to 4 chunks per thread), so threads
            // that drew cheap shards take more instead of idling behind the
            // hub shard — with the old static per-thread split, publish
            // latency was gated on whichever thread drew the hubs.
            let shards = &self.shards;
            let dirty_sealed = &dirty_sealed;
            (0..self.num_shards).into_par_iter().for_each(|s| {
                let sealed = shards[s].lock().expect("shard lock poisoned").publish();
                if sealed > 0 {
                    dirty_sealed.fetch_add(sealed as u64, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        let tables: Vec<Arc<ShardTable>> = self
            .shards
            .iter()
            .map(|m| m.lock().expect("shard lock poisoned").table.clone())
            .collect();
        let num_entries = tables.iter().map(|t| t.entries).sum();
        // Publishes are rare (once per `publish_every` ingests), so the
        // registry lookups — and the per-shard gauge `format!` — are off
        // the append hot path by construction.
        self.published_len = self.len;
        self.unpublished_metric.set(0);
        let reg = taser_obs::global();
        reg.counter("taser_index_publishes_total").inc();
        reg.counter("taser_index_dirty_nodes_total")
            .add(dirty_sealed.into_inner());
        reg.histogram("taser_index_publish_us")
            .record(started.elapsed());
        for (s, t) in tables.iter().enumerate() {
            reg.gauge(&format!("taser_index_shard_entries{{shard=\"{s}\"}}"))
                .set(t.entries as i64);
        }
        Arc::new(IncTcsr {
            shards: tables,
            num_shards: self.num_shards,
            num_nodes: self.num_nodes,
            num_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taser_graph::index::{temporal_neighbors, TemporalIndex};
    use taser_graph::tcsr::TCsr;

    fn small_log() -> EventLog {
        EventLog::from_unsorted(vec![
            (0, 1, 1.0),
            (0, 2, 2.0),
            (1, 2, 3.0),
            (0, 1, 4.0),
            (3, 0, 5.0),
        ])
    }

    /// Asserts every query agrees with a from-scratch `TCsr::build` oracle.
    fn assert_matches_oracle(idx: &IncTcsr, log: &EventLog, num_nodes: usize) {
        let oracle = TCsr::build(log, num_nodes);
        assert_eq!(idx.num_entries(), oracle.num_entries());
        for v in 0..num_nodes as u32 {
            assert_eq!(
                idx.neighbor_count(v),
                oracle.neighbor_count(v),
                "count v={v}"
            );
            for t in [0.0, 0.5, 1.0, 2.5, 4.0, 5.0, 1e9] {
                assert_eq!(idx.pivot(v, t), oracle.pivot(v, t), "pivot v={v} t={t}");
            }
            let a: Vec<_> = temporal_neighbors(idx, v, 1e9).collect();
            let b: Vec<_> = oracle.temporal_neighbors(v, 1e9).collect();
            assert_eq!(a, b, "neighbors v={v}");
        }
    }

    #[test]
    fn seed_build_matches_tcsr_oracle() {
        let log = small_log();
        for shards in [1, 2, 4, 7] {
            let mut w = IncIndexWriter::from_log(&log, 4, shards);
            let idx = w.publish();
            assert_matches_oracle(&idx, &log, 4);
        }
    }

    #[test]
    fn appends_accumulate_and_old_snapshots_stay_frozen() {
        let mut w = IncIndexWriter::new(0, 4);
        w.append(0, 1, 1.0);
        let g1 = w.publish();
        assert_eq!(g1.temporal_degree(0, 10.0), 1);
        for i in 0..200 {
            w.append(0, 1, 2.0 + i as f64);
        }
        let g2 = w.publish();
        // old generation untouched; new one sees everything
        assert_eq!(g1.temporal_degree(0, 1e9), 1);
        assert_eq!(g2.temporal_degree(0, 1e9), 201);
        assert_eq!(g2.num_entries(), 402);
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        // straddle several CHUNK_CAP boundaries and check pivots at each
        let mut w = IncIndexWriter::new(2, 2);
        let n = 3 * CHUNK_CAP + 7;
        for i in 0..n {
            w.append(0, 1, i as f64);
        }
        let idx = w.publish();
        assert_eq!(idx.neighbor_count(0), n);
        for probe in [
            0,
            1,
            CHUNK_CAP - 1,
            CHUNK_CAP,
            CHUNK_CAP + 1,
            2 * CHUNK_CAP,
            n - 1,
        ] {
            assert_eq!(idx.pivot(0, probe as f64), probe, "pivot at {probe}");
            // timestamps are 0..n, so t = probe + 0.5 admits probe + 1 of them
            assert_eq!(idx.pivot(0, probe as f64 + 0.5), probe + 1, "mid {probe}");
        }
        assert_eq!(idx.pivot(0, f64::INFINITY), n);
        // entries carry the right payloads across the boundary
        let e = idx.entry(0, CHUNK_CAP);
        assert_eq!(e.t, CHUNK_CAP as f64);
        assert_eq!(e.node, 1);
    }

    #[test]
    fn partial_tail_is_republished_until_sealed() {
        let mut w = IncIndexWriter::new(2, 1);
        for i in 0..(CHUNK_CAP - 1) {
            w.append(0, 1, i as f64);
        }
        let a = w.publish();
        w.append(0, 1, 1000.0); // fills the chunk exactly
        let b = w.publish();
        w.append(0, 1, 2000.0); // opens a new tail
        let c = w.publish();
        assert_eq!(a.neighbor_count(0), CHUNK_CAP - 1);
        assert_eq!(b.neighbor_count(0), CHUNK_CAP);
        assert_eq!(c.neighbor_count(0), CHUNK_CAP + 1);
        assert_eq!(c.pivot(0, 1500.0), CHUNK_CAP);
    }

    #[test]
    fn clean_shards_share_their_table() {
        let mut w = IncIndexWriter::new(8, 4);
        w.append(0, 4, 1.0); // touches shard 0 only (0 % 4 == 4 % 4 == 0)
        w.append(1, 5, 2.0); // touches shard 1 only
        let g1 = w.publish();
        w.append(0, 0, 3.0); // self-loop: dirties node 0 only; 1..4 clean
        let g2 = w.publish();
        assert!(
            !Arc::ptr_eq(&g1.shards[0], &g2.shards[0]),
            "dirty shard must republish"
        );
        for s in 1..4 {
            assert!(
                Arc::ptr_eq(&g1.shards[s], &g2.shards[s]),
                "clean shard {s} must be structurally shared"
            );
        }
        // and within the dirty shard, untouched nodes share their slabs
        let n1 = &g1.shards[0].nodes;
        let n2 = &g2.shards[0].nodes;
        assert!(Arc::ptr_eq(&n1[1], &n2[1]), "clean node 4 (local 1) shared");
        assert!(!Arc::ptr_eq(&n1[0], &n2[0]), "dirty node 0 republished");
    }

    #[test]
    fn sealed_chunks_are_shared_across_generations() {
        let mut w = IncIndexWriter::new(2, 1);
        for i in 0..(2 * CHUNK_CAP) {
            w.append(0, 1, i as f64);
        }
        let a = w.publish();
        w.append(0, 1, 1e6);
        let b = w.publish();
        let ca = &a.shards[0].nodes[0].chunks;
        let cb = &b.shards[0].nodes[0].chunks;
        assert_eq!(ca.len(), 2);
        assert_eq!(cb.len(), 3);
        assert!(Arc::ptr_eq(&ca[0], &cb[0]), "sealed chunk 0 shared");
        assert!(Arc::ptr_eq(&ca[1], &cb[1]), "sealed chunk 1 shared");
    }

    #[test]
    fn append_batch_equals_sequential_appends() {
        let batch: Vec<(u32, u32, f64)> = (0..500)
            .map(|i| (i % 13, (i * 7 + 1) % 13, i as f64))
            .collect();
        let mut a = IncIndexWriter::new(13, 4);
        for &(u, v, t) in &batch {
            a.append(u, v, t);
        }
        let mut b = IncIndexWriter::new(13, 4);
        let events = b.append_batch(&batch);
        assert_eq!(events.len(), 500);
        assert_eq!(events[499].eid, 499);
        let ia = a.publish();
        let ib = b.publish();
        for v in 0..13u32 {
            let na: Vec<_> = temporal_neighbors(ia.as_ref(), v, 1e9).collect();
            let nb: Vec<_> = temporal_neighbors(ib.as_ref(), v, 1e9).collect();
            assert_eq!(na, nb, "v={v}");
        }
    }

    #[test]
    fn eids_continue_past_seed_log_maximum() {
        let full = EventLog::from_unsorted((0..10).map(|i| (0u32, 1u32, i as f64)).collect());
        let mut w = IncIndexWriter::from_log(&full.tail(5), 2, 2);
        let e = w.append(0, 1, 20.0);
        assert_eq!(e.eid, 10, "eid must continue past the seed log's maximum");
    }

    #[test]
    fn node_growth_extends_the_graph() {
        let mut w = IncIndexWriter::new(2, 4);
        w.append(0, 9, 1.0);
        let idx = w.publish();
        assert_eq!(w.num_nodes(), 10);
        assert_eq!(idx.num_nodes(), 10);
        assert_eq!(idx.neighbor_count(9), 1);
        // nodes the growth skipped over answer zero, not panic
        assert_eq!(idx.neighbor_count(5), 0);
        assert_eq!(idx.pivot(5, 100.0), 0);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn rejects_time_regression() {
        let mut w = IncIndexWriter::new(2, 2);
        w.append(0, 1, 5.0);
        w.append(0, 1, 4.0);
    }

    #[test]
    fn publish_records_latency_and_dirty_counts() {
        let reg = taser_obs::global();
        let pubs_before = reg.counter("taser_index_publishes_total").get();
        let dirty_before = reg.counter("taser_index_dirty_nodes_total").get();
        let hist_before = reg.histogram("taser_index_publish_us").snapshot().count();
        let mut w = IncIndexWriter::new(4, 2);
        w.append(0, 1, 1.0);
        w.append(2, 3, 2.0);
        w.publish();
        // >= rather than ==: sibling tests publish against the same
        // process-wide registry
        assert!(reg.counter("taser_index_publishes_total").get() > pubs_before);
        // four endpoints touched -> four dirty nodes sealed
        assert!(reg.counter("taser_index_dirty_nodes_total").get() >= dirty_before + 4);
        assert!(reg.histogram("taser_index_publish_us").snapshot().count() > hist_before);
        let text = reg.render_prometheus();
        assert!(
            text.contains("taser_index_shard_entries{shard=\"0\"}"),
            "{text}"
        );
        // the unpublished-appends gauge is registered and rendered; its
        // value is last-writer-wins across sibling tests, so only its
        // presence is asserted here (the serve watchdog integration covers
        // the reset-on-publish behavior end to end)
        assert!(text.contains("taser_index_unpublished_appends"), "{text}");
    }

    #[test]
    fn self_loop_occupies_one_entry() {
        let mut w = IncIndexWriter::new(2, 2);
        w.append(0, 0, 1.0);
        w.append(0, 1, 2.0);
        let idx = w.publish();
        assert_eq!(idx.neighbor_count(0), 2);
        assert_eq!(idx.num_entries(), 3);
    }
}
